"""Property-based soundness tests for the static analysis.

For randomly generated programs (straight-line code plus *forward-only*
branches, so termination is structural), no statically-dead write may
ever be observed as referenced during execution, and the IR-detector
may never issue a direct WW verdict against a statically must-live
write.  This is exactly the invariant pair `cross_check` enforces, so
the property is: its soundness fields stay empty on arbitrary inputs.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.absint import interpret
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import WriteClass, analyze
from repro.analysis.ineffectual import cross_check
from repro.analysis.lint import lint_program
from repro.arch.functional import FunctionalSimulator
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE

_DATA_WORDS = 8
_REGS = st.integers(min_value=1, max_value=6)
_SLOTS = st.integers(min_value=0, max_value=_DATA_WORDS - 1)

_ITEM = st.one_of(
    st.tuples(st.just("rrr"), st.sampled_from(["add", "sub", "xor", "and", "or"]),
              _REGS, _REGS, _REGS),
    st.tuples(st.just("rri"), st.sampled_from(["addi", "xori", "slli"]),
              _REGS, _REGS, st.integers(min_value=0, max_value=15)),
    st.tuples(st.just("lw"), _REGS, _SLOTS),
    st.tuples(st.just("sw"), _REGS, _SLOTS),
    st.tuples(st.just("br"), st.sampled_from(["beq", "bne", "blt"]),
              _REGS, _REGS, st.integers(min_value=1, max_value=8)),
)


def _render(items) -> str:
    """Render generated items to assembly.  Every branch targets a
    label strictly ahead of it, so every execution terminates."""
    n = len(items)
    lines = [".text", "main:"]
    for i, item in enumerate(items):
        lines.append(f"L{i}:")
        kind = item[0]
        if kind == "rrr":
            _, op, d, s1, s2 = item
            lines.append(f"{op} r{d}, r{s1}, r{s2}")
        elif kind == "rri":
            _, op, d, s, imm = item
            lines.append(f"{op} r{d}, r{s}, {imm}")
        elif kind == "lw":
            _, d, slot = item
            lines.append(f"lw r{d}, {DATA_BASE + 4 * slot}(r0)")
        elif kind == "sw":
            _, s, slot = item
            lines.append(f"sw r{s}, {DATA_BASE + 4 * slot}(r0)")
        else:
            _, op, a, b, skip = item
            lines.append(f"{op} r{a}, r{b}, L{min(i + skip, n)}")
    lines.append(f"L{n}:")
    lines.append("halt")
    lines.append(".data")
    lines.append("arr: .word " + " ".join(str((3 * k) & 0xFF)
                                          for k in range(_DATA_WORDS)))
    return "\n".join(lines) + "\n"


def _render_looped(items, trips) -> str:
    """Wrap the generated body in a counted outer loop (r7 is the
    reserved counter), so widening at the loop header is exercised."""
    n = len(items)
    lines = [".text", "main:", f"addi r7, r0, {trips}", "outer:"]
    for i, item in enumerate(items):
        lines.append(f"L{i}:")
        kind = item[0]
        if kind == "rrr":
            _, op, d, s1, s2 = item
            lines.append(f"{op} r{d}, r{s1}, r{s2}")
        elif kind == "rri":
            _, op, d, s, imm = item
            lines.append(f"{op} r{d}, r{s}, {imm}")
        elif kind == "lw":
            _, d, slot = item
            lines.append(f"lw r{d}, {DATA_BASE + 4 * slot}(r0)")
        elif kind == "sw":
            _, s, slot = item
            lines.append(f"sw r{s}, {DATA_BASE + 4 * slot}(r0)")
        else:
            _, op, a, b, skip = item
            lines.append(f"{op} r{a}, r{b}, L{min(i + skip, n)}")
    lines.append(f"L{n}:")
    lines.append("addi r7, r7, -1")
    lines.append("bne r7, r0, outer")
    lines.append("halt")
    lines.append(".data")
    lines.append("arr: .word " + " ".join(str((3 * k) & 0xFF)
                                          for k in range(_DATA_WORDS)))
    return "\n".join(lines) + "\n"


class TestIntervalContainment:
    """The fundamental abstract-interpretation soundness property: on
    every retired dynamic instruction, each concrete operand value lies
    in the instruction's incoming abstract interval and each written
    value lies in the outgoing one."""

    @staticmethod
    def _check_containment(program):
        res = interpret(program)
        for dyn in FunctionalSimulator(program, max_instructions=20_000).steps():
            index = program.index_of(dyn.pc)
            env_in = res.env_in[index]
            env_out = res.env_out[index]
            assert env_in is not None, (
                f"retired pc {dyn.pc:#x} was marked unreachable"
            )
            for reg, val in zip(dyn.instr.src_regs(), dyn.src_values):
                lo, hi = env_in[0][reg]
                assert lo <= val <= hi, (
                    f"pc {dyn.pc:#x}: src r{reg}={val} outside [{lo}, {hi}]"
                )
            if dyn.dest_reg is not None and env_out is not None:
                lo, hi = env_out[0][dyn.dest_reg]
                assert lo <= dyn.value <= hi, (
                    f"pc {dyn.pc:#x}: dest r{dyn.dest_reg}={dyn.value} "
                    f"outside [{lo}, {hi}]"
                )
            if (dyn.writes_memory and env_out is not None
                    and dyn.mem_addr in env_out[1]):
                lo, hi = env_out[1][dyn.mem_addr]
                assert lo <= dyn.value <= hi, (
                    f"pc {dyn.pc:#x}: mem[{dyn.mem_addr:#x}]={dyn.value} "
                    f"outside [{lo}, {hi}]"
                )

    @given(st.lists(_ITEM, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_straightline_values_in_intervals(self, items):
        self._check_containment(assemble(_render(items), name="prop"))

    @given(
        st.lists(_ITEM, min_size=1, max_size=25),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_looped_values_in_intervals(self, items, trips):
        """A counted outer loop forces widening/narrowing at a real
        loop header; containment must survive the precision loss."""
        self._check_containment(
            assemble(_render_looped(items, trips), name="prop-loop")
        )


class TestStaticSoundness:
    @given(st.lists(_ITEM, min_size=1, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_dead_writes_never_referenced(self, items):
        program = assemble(_render(items), name="prop")
        result = cross_check(program, max_instructions=10_000)
        assert not result.truncated
        assert result.static_unsound_pcs == ()
        assert result.detector_contradiction_pcs == ()

    @given(st.lists(_ITEM, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_analyses_total(self, items):
        """The analyzer and linter run to completion on arbitrary
        generated programs, and the write classification covers every
        reachable register write."""
        program = assemble(_render(items), name="prop")
        df = analyze(build_cfg(program))
        reachable = df.cfg.reachable_instrs()
        for i, instr in enumerate(program.instructions):
            if instr.dest is not None and i in reachable:
                assert df.write_classes[i] in WriteClass
        lint_program(program)  # must not raise
