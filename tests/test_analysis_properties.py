"""Property-based soundness tests for the static analysis.

For randomly generated programs (straight-line code plus *forward-only*
branches, so termination is structural), no statically-dead write may
ever be observed as referenced during execution, and the IR-detector
may never issue a direct WW verdict against a statically must-live
write.  This is exactly the invariant pair `cross_check` enforces, so
the property is: its soundness fields stay empty on arbitrary inputs.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import WriteClass, analyze
from repro.analysis.ineffectual import cross_check
from repro.analysis.lint import lint_program
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE

_DATA_WORDS = 8
_REGS = st.integers(min_value=1, max_value=6)
_SLOTS = st.integers(min_value=0, max_value=_DATA_WORDS - 1)

_ITEM = st.one_of(
    st.tuples(st.just("rrr"), st.sampled_from(["add", "sub", "xor", "and", "or"]),
              _REGS, _REGS, _REGS),
    st.tuples(st.just("rri"), st.sampled_from(["addi", "xori", "slli"]),
              _REGS, _REGS, st.integers(min_value=0, max_value=15)),
    st.tuples(st.just("lw"), _REGS, _SLOTS),
    st.tuples(st.just("sw"), _REGS, _SLOTS),
    st.tuples(st.just("br"), st.sampled_from(["beq", "bne", "blt"]),
              _REGS, _REGS, st.integers(min_value=1, max_value=8)),
)


def _render(items) -> str:
    """Render generated items to assembly.  Every branch targets a
    label strictly ahead of it, so every execution terminates."""
    n = len(items)
    lines = [".text", "main:"]
    for i, item in enumerate(items):
        lines.append(f"L{i}:")
        kind = item[0]
        if kind == "rrr":
            _, op, d, s1, s2 = item
            lines.append(f"{op} r{d}, r{s1}, r{s2}")
        elif kind == "rri":
            _, op, d, s, imm = item
            lines.append(f"{op} r{d}, r{s}, {imm}")
        elif kind == "lw":
            _, d, slot = item
            lines.append(f"lw r{d}, {DATA_BASE + 4 * slot}(r0)")
        elif kind == "sw":
            _, s, slot = item
            lines.append(f"sw r{s}, {DATA_BASE + 4 * slot}(r0)")
        else:
            _, op, a, b, skip = item
            lines.append(f"{op} r{a}, r{b}, L{min(i + skip, n)}")
    lines.append(f"L{n}:")
    lines.append("halt")
    lines.append(".data")
    lines.append("arr: .word " + " ".join(str((3 * k) & 0xFF)
                                          for k in range(_DATA_WORDS)))
    return "\n".join(lines) + "\n"


class TestStaticSoundness:
    @given(st.lists(_ITEM, min_size=1, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_dead_writes_never_referenced(self, items):
        program = assemble(_render(items), name="prop")
        result = cross_check(program, max_instructions=10_000)
        assert not result.truncated
        assert result.static_unsound_pcs == ()
        assert result.detector_contradiction_pcs == ()

    @given(st.lists(_ITEM, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_analyses_total(self, items):
        """The analyzer and linter run to completion on arbitrary
        generated programs, and the write classification covers every
        reachable register write."""
        program = assemble(_render(items), name="prop")
        df = analyze(build_cfg(program))
        reachable = df.cfg.reachable_instrs()
        for i, instr in enumerate(program.instructions):
            if instr.dest is not None and i in reachable:
                assert df.write_classes[i] in WriteClass
        lint_program(program)  # must not raise
