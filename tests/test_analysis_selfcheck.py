"""Unit tests for the self-determinism lint (repro.analysis.selfcheck).

Each rule is pinned with a minimal positive and negative source, plus
the ``# selfcheck: ok(rule)`` suppression contract and the clean sweep
of the shipped package itself (the property CI relies on).
"""

import textwrap

from repro.analysis.selfcheck import (
    ALL_RULES,
    active,
    check_source,
    check_tree,
    summarize,
)


def _rules(source):
    return [d.rule for d in check_source(textwrap.dedent(source))]


class TestUnseededRandom:
    def test_global_rng_draw_flagged(self):
        assert "unseeded-random" in _rules(
            """
            import random
            x = random.randint(0, 7)
            """
        )

    def test_unseeded_constructor_flagged(self):
        assert "unseeded-random" in _rules(
            """
            import random
            rng = random.Random()
            """
        )

    def test_seeded_constructor_clean(self):
        assert "unseeded-random" not in _rules(
            """
            import random
            rng = random.Random(1234)
            x = rng.randint(0, 7)
            """
        )


class TestWallClock:
    def test_time_time_flagged(self):
        assert "wall-clock" in _rules(
            """
            import time
            stamp = time.time()
            """
        )

    def test_datetime_now_flagged(self):
        assert "wall-clock" in _rules(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        )

    def test_monotonic_clean(self):
        assert "wall-clock" not in _rules(
            """
            import time
            t0 = time.perf_counter()
            elapsed = time.perf_counter() - t0
            """
        )


class TestSetIteration:
    def test_loop_over_set_call_flagged(self):
        assert "set-iteration" in _rules(
            """
            def f(items):
                for x in set(items):
                    print(x)
            """
        )

    def test_comprehension_over_set_literal_flagged(self):
        assert "set-iteration" in _rules(
            """
            out = [x + 1 for x in {3, 1, 2}]
            """
        )

    def test_loop_over_set_variable_flagged(self):
        assert "set-iteration" in _rules(
            """
            def f(items):
                pending = set(items)
                for x in pending:
                    print(x)
            """
        )

    def test_sorted_set_clean(self):
        assert "set-iteration" not in _rules(
            """
            def f(items):
                for x in sorted(set(items)):
                    print(x)
            """
        )


class TestSuppression:
    SOURCE = textwrap.dedent(
        """
        import time
        stamp = time.time()  # selfcheck: ok(wall-clock)
        """
    )

    def test_suppressed_finding_reported_but_inactive(self):
        diags = check_source(self.SOURCE)
        assert [d.rule for d in diags] == ["wall-clock"]
        assert diags[0].suppressed
        assert active(diags) == []
        assert summarize(diags)["wall-clock"] == 0

    def test_wrong_rule_suppression_stays_active(self):
        diags = check_source(
            textwrap.dedent(
                """
                import time
                stamp = time.time()  # selfcheck: ok(set-iteration)
                """
            )
        )
        assert len(active(diags)) == 1

    def test_render_marks_suppressed(self):
        diags = check_source(self.SOURCE, path="mod.py")
        assert diags[0].render().endswith("(suppressed)")
        assert "mod.py:" in diags[0].render()


class TestPackageSweep:
    def test_shipped_package_is_clean(self):
        """The invariant CI enforces: no unsuppressed findings in
        src/repro itself."""
        diags = check_tree()
        assert active(diags) == [], "\n".join(
            d.render() for d in active(diags)
        )

    def test_summary_covers_all_rules(self):
        counts = summarize(check_tree())
        assert set(counts) == set(ALL_RULES)
        assert all(v == 0 for v in counts.values())
