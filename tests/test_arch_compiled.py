"""The compiled execution engine must be indistinguishable from the
interpreter: identical DynInstr streams on every suite workload,
identical architectural end states on arbitrary generated programs, and
identical SlipstreamResults through the full co-simulation.  The engine
is a pure performance substitution — any observable difference is a bug.
"""

from itertools import zip_longest

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.compiled import (
    ENGINE_ENV,
    CompiledProgram,
    compiled_enabled,
    compiled_for,
    resolve_engine,
)
from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamProcessor
from repro.isa.assembler import assemble
from repro.workloads.suite import benchmark_suite, get_benchmark
from tests.test_analysis_properties import _ITEM, _render


def _stream_pairs(program, max_instructions=50_000_000):
    """Lock-step (interpreted, compiled) retired-instruction pairs."""
    interp = FunctionalSimulator(
        program, max_instructions=max_instructions, engine="interpreted"
    )
    comp = FunctionalSimulator(
        program, max_instructions=max_instructions, engine="compiled"
    )
    return zip_longest(interp.steps(), comp.steps())


class TestEngineSelection:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert compiled_enabled()
        assert resolve_engine(None) == "compiled"

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_falsy_env_opts_out(self, monkeypatch, value):
        monkeypatch.setenv(ENGINE_ENV, value)
        assert not compiled_enabled()
        assert resolve_engine(None) == "interpreted"

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", ""])
    def test_truthy_env_keeps_compiled(self, monkeypatch, value):
        monkeypatch.setenv(ENGINE_ENV, value)
        assert resolve_engine(None) == "compiled"

    def test_explicit_engine_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "0")
        assert resolve_engine("compiled") == "compiled"
        monkeypatch.delenv(ENGINE_ENV)
        assert resolve_engine("interpreted") == "interpreted"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("jit")

    def test_compiled_for_memoizes_per_program_instance(self):
        program = get_benchmark("jpeg").program(1)
        assert compiled_for(program) is compiled_for(program)
        other = get_benchmark("jpeg").program(1)
        assert compiled_for(other) is not compiled_for(program)


class TestSuiteStreamIdentity:
    """The ISSUE's core acceptance: byte-identical dynamic instruction
    streams on all eight suite workloads."""

    @pytest.mark.parametrize(
        "name", [b.name for b in benchmark_suite()]
    )
    def test_dyn_instr_stream_identical(self, name):
        program = get_benchmark(name).program(1)
        for interp_dyn, comp_dyn in _stream_pairs(program):
            assert interp_dyn == comp_dyn
            if interp_dyn != comp_dyn:  # pragma: no cover - fail detail
                break

    def test_block_run_matches_stepped_run(self):
        """The effect-only basic-block path (no DynInstr allocation)
        reaches the same final state as the per-step paths."""
        program = get_benchmark("jpeg").program(1)
        ref = FunctionalSimulator(program, engine="interpreted").run()
        fast = FunctionalSimulator(program, engine="compiled").run()
        assert fast.instruction_count == ref.instruction_count
        assert fast.output == ref.output
        assert fast.state.regs == ref.state.regs
        assert fast.state.mem.writes == ref.state.mem.writes
        assert fast.state.halted == ref.state.halted


class TestSlipstreamIdentity:
    def test_cosimulation_results_identical(self):
        program = get_benchmark("jpeg").program(1)
        ref = SlipstreamProcessor(program, engine="interpreted").run()
        fast = SlipstreamProcessor(program, engine="compiled").run()
        assert fast == ref

    def test_block_cache_is_lazy_and_bounded(self):
        program = get_benchmark("jpeg").program(1)
        engine = CompiledProgram(program)
        assert engine.blocks_compiled == 0
        state = FunctionalSimulator(program).fresh_state()
        engine.run(state, program.entry, 10_000_000)
        assert 0 < engine.blocks_compiled <= len(program.instructions)


class TestGeneratedProgramIdentity:
    """Property: for arbitrary generated programs (forward-only
    branches, so termination is structural), both engines retire the
    same stream and land on the same architectural state."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_ITEM, min_size=1, max_size=40))
    def test_engines_agree_on_random_programs(self, items):
        program = assemble(_render(items), name="prop")
        interp = FunctionalSimulator(program, engine="interpreted")
        comp = FunctionalSimulator(program, engine="compiled")
        retired = 0
        state_i = interp.fresh_state()
        state_c = comp.fresh_state()
        for dyn_i, dyn_c in zip_longest(
            interp.steps(state_i), comp.steps(state_c)
        ):
            assert dyn_i == dyn_c
            retired += 1
        assert retired >= 1
        assert state_i.regs == state_c.regs
        assert state_i.mem.writes == state_c.mem.writes
        assert state_i.output == state_c.output
        assert state_i.halted and state_c.halted
        # The block path agrees with both stepped paths.
        run_c = comp.run()
        assert run_c.instruction_count == retired
        assert run_c.state.regs == state_i.regs
        assert run_c.state.mem.writes == state_i.mem.writes
        assert run_c.output == state_i.output
