"""Unit tests for single-instruction semantics and the functional simulator."""

import pytest

from repro.arch.executor import ExecutionError, execute_one, wrap32
from repro.arch.functional import FunctionalSimulator, InstructionLimitExceeded
from repro.arch.state import ArchState
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE


def run_source(source, **kwargs):
    program = assemble(source)
    sim = FunctionalSimulator(program, **kwargs)
    return sim.run()


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(123) == 123
        assert wrap32(-123) == -123

    def test_overflow_wraps(self):
        assert wrap32(2**31) == -(2**31)
        assert wrap32(-(2**31) - 1) == 2**31 - 1
        assert wrap32(0xFFFFFFFF) == -1


class TestAluSemantics:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", -3, 4, -12),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("slt", -1, 0, 1),
            ("slt", 1, 0, 0),
            ("sltu", -1, 0, 0),  # -1 is 0xFFFFFFFF unsigned
            ("sll", 1, 4, 16),
            ("sra", -16, 2, -4),
            ("srl", -16, 28, 15),
        ],
    )
    def test_rrr(self, op, a, b, expected):
        result = run_source(
            f"addi r1, r0, {a}\naddi r2, r0, {b}\n{op} r3, r1, r2\nout r3\nhalt"
        )
        assert result.output == [expected]

    def test_nor(self):
        result = run_source("addi r1, r0, 0\nnor r3, r1, r1\nout r3\nhalt")
        assert result.output == [-1]

    def test_lui_builds_high_bits(self):
        result = run_source("lui r1, 0x1234\nout r1\nhalt")
        assert result.output == [0x12340000]

    def test_div_rem_signs(self):
        result = run_source(
            "addi r1, r0, -7\naddi r2, r0, 2\n"
            "div r3, r1, r2\nrem r4, r1, r2\nout r3\nout r4\nhalt"
        )
        # Truncating division: -7 / 2 = -3 rem -1.
        assert result.output == [-3, -1]

    def test_div_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            run_source("div r1, r2, r0\nhalt")

    def test_mul_wraps_32_bit(self):
        result = run_source(
            "lui r1, 0x7fff\nori r1, r1, 0xffff\nmul r2, r1, r1\nout r2\nhalt"
        )
        assert result.output == [wrap32(0x7FFFFFFF * 0x7FFFFFFF)]

    def test_r0_writes_discarded(self):
        result = run_source("addi r0, r0, 99\nout r0\nhalt")
        assert result.output == [0]


class TestMemorySemantics:
    def test_store_load_roundtrip(self):
        result = run_source(
            f"addi r1, r0, {DATA_BASE}\naddi r2, r0, 77\n"
            "sw r2, 0(r1)\nlw r3, 0(r1)\nout r3\nhalt"
        )
        assert result.output == [77]

    def test_load_from_initial_image(self):
        result = run_source(
            ".text\nlw r1, seed(r0)\nout r1\nhalt\n.data\nseed: .word 31415"
        )
        assert result.output == [31415]

    def test_load_of_untouched_address_is_zero(self):
        result = run_source(f"addi r1, r0, {DATA_BASE + 4096}\nlw r2, 0(r1)\nout r2\nhalt")
        assert result.output == [0]

    def test_unaligned_access_raises(self):
        with pytest.raises(ValueError, match="unaligned"):
            run_source(f"addi r1, r0, {DATA_BASE + 2}\nlw r2, 0(r1)\nhalt")

    def test_negative_offset_addressing(self):
        result = run_source(
            f"addi r1, r0, {DATA_BASE + 8}\naddi r2, r0, 5\n"
            "sw r2, -8(r1)\n"
            f"addi r3, r0, {DATA_BASE}\nlw r4, 0(r3)\nout r4\nhalt"
        )
        assert result.output == [5]


class TestControlFlow:
    def test_loop_sums(self):
        result = run_source(
            "addi r1, r0, 5\n"
            "loop: add r2, r2, r1\n"
            "addi r1, r1, -1\n"
            "bne r1, r0, loop\n"
            "out r2\nhalt"
        )
        assert result.output == [15]

    def test_branch_flavours(self):
        result = run_source(
            "addi r1, r0, -1\naddi r2, r0, 1\n"
            "blt r1, r2, a\nout r0\n"
            "a: bltu r1, r2, b\nout r2\n"  # unsigned: 0xFFFFFFFF >= 1, no branch
            "b: bge r2, r1, c\nout r0\n"
            "c: halt"
        )
        assert result.output == [1]

    def test_jal_jalr_call_return(self):
        result = run_source(
            "main:\n jal r31, func\n out r2\n halt\n"
            "func:\n addi r2, r0, 123\n jalr r0, r31\n"
        )
        assert result.output == [123]

    def test_jal_records_link(self):
        program = assemble("main: jal r31, target\nnop\ntarget: out r31\nhalt")
        sim = FunctionalSimulator(program)
        result = sim.run()
        assert result.output == [program.entry + 4]

    def test_halt_is_fixed_point(self):
        program = assemble("halt")
        state = ArchState(image=program.data)
        dyn = execute_one(program, state, program.entry)
        assert state.halted
        assert dyn.next_pc == program.entry

    def test_instruction_limit_enforced(self):
        with pytest.raises(InstructionLimitExceeded):
            run_source("loop: j loop", max_instructions=100)


class TestDynInstrRecords:
    def test_store_record_fields(self):
        program = assemble(f"addi r1, r0, {DATA_BASE}\naddi r2, r0, 9\nsw r2, 4(r1)\nhalt")
        sim = FunctionalSimulator(program)
        records = list(sim.steps())
        store = records[2]
        assert store.is_store and store.mem_addr == DATA_BASE + 4 and store.value == 9
        assert store.dest_reg is None

    def test_branch_record_fields(self):
        program = assemble("beq r0, r0, target\nnop\ntarget: halt")
        records = list(FunctionalSimulator(program).steps())
        br = records[0]
        assert br.is_branch and br.taken and br.next_pc == program.labels["target"]

    def test_seq_numbers_monotonic(self):
        program = assemble("addi r1, r0, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
        seqs = [d.seq for d in FunctionalSimulator(program).steps()]
        assert seqs == list(range(len(seqs)))

    def test_src_values_captured_before_write(self):
        program = assemble("addi r1, r0, 10\nadd r1, r1, r1\nhalt")
        records = list(FunctionalSimulator(program).steps())
        assert records[1].src_values == (10, 10)
        assert records[1].value == 20
