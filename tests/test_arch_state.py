"""Unit tests for register file and copy-on-write memory."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.state import ArchState, Memory, RegisterFile
from repro.isa.instructions import REG_COUNT


class TestRegisterFile:
    def test_initially_zero(self):
        regs = RegisterFile()
        assert all(regs.read(i) == 0 for i in range(REG_COUNT))

    def test_r0_write_discarded(self):
        regs = RegisterFile()
        regs.write(0, 42)
        assert regs.read(0) == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs.write(5, -7)
        assert regs.read(5) == -7

    def test_copy_is_independent(self):
        regs = RegisterFile()
        regs.write(1, 10)
        clone = regs.copy()
        clone.write(1, 20)
        assert regs.read(1) == 10

    def test_copy_from_overwrites_all(self):
        a, b = RegisterFile(), RegisterFile()
        a.write(1, 10)
        b.write(1, 99)
        b.write(2, 98)
        a.copy_from(b)
        assert a == b

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile([0] * 10)


class TestMemory:
    def test_default_zero(self):
        assert Memory().read(0x1000) == 0

    def test_image_visible_through_overlay(self):
        mem = Memory(image={0x100: 7})
        assert mem.read(0x100) == 7

    def test_write_shadows_image(self):
        mem = Memory(image={0x100: 7})
        mem.write(0x100, 8)
        assert mem.read(0x100) == 8
        assert mem.image[0x100] == 7  # image untouched

    def test_fork_shares_image_copies_writes(self):
        mem = Memory(image={0x100: 7})
        mem.write(0x200, 1)
        forked = mem.fork()
        forked.write(0x200, 2)
        assert mem.read(0x200) == 1
        assert forked.read(0x200) == 2
        assert forked.read(0x100) == 7

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            Memory().read(0x101)
        with pytest.raises(ValueError):
            Memory().write(0x102, 1)

    def test_differing_addresses(self):
        base = Memory(image={0x100: 1})
        a, b = base.fork(), base.fork()
        a.write(0x200, 5)
        b.write(0x200, 5)
        a.write(0x300, 1)
        assert a.differing_addresses(b) == {0x300}

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=1 << 20).map(lambda a: a * 4),
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
            max_size=50,
        )
    )
    def test_differing_addresses_symmetric(self, writes):
        a, b = Memory(), Memory()
        for addr, value in writes.items():
            a.write(addr, value)
        assert a.differing_addresses(b) == b.differing_addresses(a)
        # Repairing the differing addresses makes the memories equal.
        for addr in a.differing_addresses(b):
            b.write(addr, a.read(addr))
        assert a.differing_addresses(b) == set()


class TestArchState:
    def test_fork_independent_contexts(self):
        state = ArchState(image={0x100: 3})
        state.regs.write(1, 10)
        state.mem.write(0x200, 20)
        state.output.append(1)
        forked = state.fork()
        forked.regs.write(1, 11)
        forked.mem.write(0x200, 21)
        forked.output.append(2)
        assert state.regs.read(1) == 10
        assert state.mem.read(0x200) == 20
        assert state.output == [1]
        assert forked.output == [1, 2]
