"""Unit tests for the delay buffer and the recovery controller."""

import pytest

from repro.core.delay_buffer import DelayBuffer, DelayBufferError
from repro.core.recovery import (
    MIN_RECOVERY_LATENCY,
    RecoveryController,
    RecoveryCost,
)


class TestDelayBuffer:
    def test_push_without_pressure_is_immediate(self):
        buf = DelayBuffer(capacity=64)
        assert buf.push(10, produce_cycle=100) == 100
        assert buf.occupancy == 10

    def test_backpressure_delays_push(self):
        buf = DelayBuffer(capacity=16)
        buf.push(16, produce_cycle=0)
        buf.mark_popped(pop_cycle=500)
        # Second group needs the first to drain at cycle 500.
        assert buf.push(8, produce_cycle=10) == 500
        assert buf.backpressure_events == 1

    def test_no_delay_when_pop_already_happened(self):
        buf = DelayBuffer(capacity=16)
        buf.push(16, produce_cycle=0)
        buf.mark_popped(pop_cycle=5)
        assert buf.push(8, produce_cycle=10) == 10

    def test_partial_drain(self):
        buf = DelayBuffer(capacity=20)
        buf.push(10, 0)
        buf.mark_popped(100)
        buf.push(10, 0)
        buf.mark_popped(200)
        # Needs only the first group's space.
        assert buf.push(10, 50) == 100

    def test_zero_entry_group_counts_as_one(self):
        buf = DelayBuffer(capacity=4)
        buf.push(0, 0)
        assert buf.occupancy == 1

    def test_oversized_group_rejected(self):
        with pytest.raises(DelayBufferError):
            DelayBuffer(capacity=4).push(5, 0)

    def test_backpressure_on_unpopped_group_is_protocol_error(self):
        buf = DelayBuffer(capacity=8)
        buf.push(8, 0)  # never popped
        with pytest.raises(DelayBufferError):
            buf.push(8, 0)

    def test_mark_popped_without_group_rejected(self):
        with pytest.raises(DelayBufferError):
            DelayBuffer().mark_popped(0)

    def test_flush_empties(self):
        buf = DelayBuffer(capacity=8)
        buf.push(4, 0)
        buf.flush()
        assert buf.occupancy == 0
        buf.push(8, 0)  # full capacity available again

    def test_flush_then_mark_popped_rejected(self):
        """flush() resets the unpopped tracking too: a mark after a
        flush has no group to land on and must raise, not silently
        corrupt the next group's pop state."""
        buf = DelayBuffer(capacity=8)
        buf.push(4, 0)
        buf.flush()
        with pytest.raises(DelayBufferError):
            buf.mark_popped(10)
        # And the buffer is still usable afterwards.
        buf.push(8, 0)
        buf.mark_popped(50)
        assert buf.push(4, 0) == 50

    def test_mark_popped_is_fifo_over_many_groups(self):
        """Pops mark the oldest unpopped group even after partial
        drains (the O(1) second-deque invariant)."""
        buf = DelayBuffer(capacity=100)
        for i in range(10):
            buf.push(10, produce_cycle=i)
        for i in range(10):
            buf.mark_popped(pop_cycle=1000 + i)
        # All ten groups drained; a full-capacity push waits only for
        # the groups it displaces, oldest first.
        assert buf.push(100, produce_cycle=0) == 1009

    def test_snapshot_counters(self):
        buf = DelayBuffer(capacity=16)
        buf.push(16, 0)
        buf.mark_popped(500)
        buf.push(8, 10)
        snap = buf.snapshot()
        assert snap["pushes"] == 2
        assert snap["backpressure_events"] == 1
        assert snap["max_occupancy"] == 16

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            DelayBuffer(capacity=0)


class TestRecoveryCost:
    def test_minimum_latency_is_21(self):
        assert MIN_RECOVERY_LATENCY == 21
        assert RecoveryCost(0).latency == 21

    def test_memory_restores_add_cycles(self):
        assert RecoveryCost(4).latency == 22
        assert RecoveryCost(5).latency == 23
        assert RecoveryCost(8).latency == 23


class TestRecoveryController:
    def test_undo_tracking_lifecycle(self):
        ctrl = RecoveryController()
        ctrl.track_undo(0x100)
        assert ctrl.tracked_addresses() == {0x100}
        ctrl.untrack_undo(0x100)
        assert ctrl.tracked_addresses() == set()

    def test_undo_refcounting(self):
        ctrl = RecoveryController()
        ctrl.track_undo(0x100)
        ctrl.track_undo(0x100)
        ctrl.untrack_undo(0x100)
        assert 0x100 in ctrl.tracked_addresses()
        ctrl.untrack_undo(0x100)
        assert 0x100 not in ctrl.tracked_addresses()

    def test_do_tracking_released_by_trace_verification(self):
        ctrl = RecoveryController()
        ctrl.track_do(0x200, trace_seq=7)
        ctrl.track_do(0x204, trace_seq=7)
        ctrl.track_do(0x208, trace_seq=8)
        ctrl.release_verified_trace(7)
        assert ctrl.tracked_addresses() == {0x208}

    def test_release_unknown_trace_is_noop(self):
        ctrl = RecoveryController()
        ctrl.release_verified_trace(99)
        assert ctrl.outstanding == 0

    def test_recover_reports_unique_addresses_and_clears(self):
        ctrl = RecoveryController()
        ctrl.track_undo(0x100)
        ctrl.track_do(0x100, trace_seq=1)  # same address in both sets
        ctrl.track_do(0x200, trace_seq=1)
        cost = ctrl.recover()
        assert cost.memory_locations == 2
        assert cost.latency == 21 + 1
        assert ctrl.tracked_addresses() == set()
        assert ctrl.recoveries == 1

    def test_max_outstanding_statistic(self):
        ctrl = RecoveryController()
        for i in range(5):
            ctrl.track_undo(0x100 + 4 * i)
        for i in range(5):
            ctrl.untrack_undo(0x100 + 4 * i)
        assert ctrl.max_outstanding == 5
        assert ctrl.outstanding == 0
