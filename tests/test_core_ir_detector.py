"""Unit tests for the IR-detector: triggers, back-propagation, scope."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.ir_detector import IRDetector, TraceAnalysis
from repro.core.removal import RemovalKind, removal_category
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE
from repro.trace.selection import TraceSelector


def analyses_of(source, trace_length=32, scope=8, triggers=("BR", "WW", "SV")):
    """Run a program, feed all retired traces to a detector, drain it."""
    program = assemble(source)
    sim = FunctionalSimulator(program)
    detector = IRDetector(scope_traces=scope, triggers=triggers)
    analyses = []
    for trace in TraceSelector(trace_length).chunk(sim.steps()):
        analyses.extend(detector.feed_trace(trace))
    analyses.extend(detector.drain())
    return program, analyses


def flat_kinds(program, analyses):
    """Map text-PC index -> (selected, kind) from per-trace analyses.

    Only meaningful for straight-line test programs where each static
    instruction executes once.
    """
    result = {}
    sim = FunctionalSimulator(program)
    stream = list(sim.steps())
    pos = 0
    for analysis in analyses:
        for selected, kind in zip(analysis.ir_vec, analysis.kinds):
            result[stream[pos].pc] = (selected, kind)
            pos += 1
    return result


class TestTriggers:
    def test_branch_selected(self):
        source = "addi r1, r0, 1\nbeq r1, r0, done\ndone: halt"
        program, analyses = analyses_of(source)
        kinds = [k for a in analyses for k in a.kinds]
        assert RemovalKind.BR in kinds

    def test_unreferenced_write_selected(self):
        # r2 written twice with no intervening use: first write is WW.
        source = (
            "addi r2, r0, 5\n"      # WW victim
            "addi r2, r0, 6\n"
            "out r2\nhalt"
        )
        program, analyses = analyses_of(source)
        vec = analyses[0].ir_vec
        kinds = analyses[0].kinds
        assert vec[0] and kinds[0] == RemovalKind.WW
        assert not vec[1]

    def test_referenced_write_not_ww(self):
        source = (
            "addi r2, r0, 5\n"
            "add r3, r2, r0\n"      # reference
            "addi r2, r0, 6\n"
            "out r2\nout r3\nhalt"
        )
        _, analyses = analyses_of(source)
        assert not analyses[0].ir_vec[0]

    def test_silent_store_selected_sv(self):
        source = (
            f"addi r1, r0, {DATA_BASE}\n"
            "addi r2, r0, 7\n"
            "sw r2, 0(r1)\n"
            "sw r2, 0(r1)\n"        # same value: SV
            "lw r3, 0(r1)\nout r3\nhalt"
        )
        _, analyses = analyses_of(source)
        vec, kinds = analyses[0].ir_vec, analyses[0].kinds
        assert not vec[2]
        assert vec[3] and kinds[3] == RemovalKind.SV

    def test_silent_register_write_selected_sv(self):
        source = (
            "addi r2, r0, 7\n"
            "addi r2, r0, 7\n"      # same value into r2: SV
            "out r2\nhalt"
        )
        _, analyses = analyses_of(source)
        assert analyses[0].ir_vec[1]
        assert analyses[0].kinds[1] == RemovalKind.SV

    def test_out_and_halt_never_selected(self):
        source = "addi r1, r0, 1\nout r1\nhalt"
        _, analyses = analyses_of(source)
        vec = [v for a in analyses for v in a.ir_vec]
        # out and halt are the last two instructions.
        assert not vec[-1] and not vec[-2]

    def test_jalr_never_selected(self):
        source = "main: jal r31, f\nhalt\nf: jalr r0, r31"
        _, analyses = analyses_of(source)
        all_pairs = [
            (d, k) for a in analyses for d, k in zip(a.ir_vec, a.kinds)
        ]
        # jalr is instruction index 2 in retirement order: jal, jalr, halt.
        assert not all_pairs[1][0]


class TestBackPropagation:
    def test_chain_feeding_dead_write_removed(self):
        # r3 = r1 + r2 feeds only r4, r4 is overwritten unused: the
        # whole chain dies as P: WW.
        source = (
            "addi r1, r0, 1\n"
            "addi r2, r0, 2\n"
            "add r3, r1, r2\n"      # feeds only r4 computation
            "add r4, r3, r3\n"      # killed unreferenced -> WW
            "addi r4, r0, 9\n"
            "addi r3, r0, 8\n"      # kill r3 so its propagation resolves
            "out r4\nout r3\nhalt"
        )
        program, analyses = analyses_of(source)
        vec, kinds = analyses[0].ir_vec, analyses[0].kinds
        assert vec[3] and kinds[3] == RemovalKind.WW
        assert vec[2]
        assert kinds[2] == (RemovalKind.PROPAGATED | RemovalKind.WW)
        assert removal_category(kinds[2]) == "P: WW"

    def test_chain_feeding_branch_removed(self):
        # r5 feeds only the branch; once killed it back-propagates P: BR.
        source = (
            "addi r5, r0, 0\n"
            "beq r5, r0, next\n"
            "next: addi r5, r0, 3\n"   # kills first write of r5
            "out r5\nhalt"
        )
        _, analyses = analyses_of(source)
        vec, kinds = analyses[0].ir_vec, analyses[0].kinds
        assert vec[1] and kinds[1] == RemovalKind.BR
        assert vec[0] and kinds[0] == (RemovalKind.PROPAGATED | RemovalKind.BR)

    def test_chain_with_live_consumer_not_removed(self):
        source = (
            "addi r5, r0, 0\n"
            "beq r5, r0, next\n"
            "next: out r5\n"           # live use of r5
            "addi r5, r0, 3\n"
            "out r5\nhalt"
        )
        _, analyses = analyses_of(source)
        vec = analyses[0].ir_vec
        assert vec[1]       # the branch itself
        assert not vec[0]   # but not its producer (out consumes it)

    def test_propagation_confined_to_trace(self):
        # Producer in trace 1, branch consumer in trace 2: even though
        # both are selected/killed, the producer must not propagate.
        source = (
            "addi r5, r0, 0\n"         # trace 1 (trace_length=2)
            "nop\n"
            "beq r5, r0, next\n"       # trace 2
            "next: addi r5, r0, 3\n"
            "out r5\nhalt"
        )
        _, analyses = analyses_of(source, trace_length=2)
        first_trace = analyses[0]
        assert not first_trace.ir_vec[0]

    def test_cross_trace_kill_still_triggers_ww(self):
        # The kill may come from a later trace within the scope.
        source = (
            "addi r2, r0, 5\n"         # trace 1
            "nop\n"
            "addi r2, r0, 6\n"         # trace 2 kills r2
            "out r2\nhalt"
        )
        _, analyses = analyses_of(source, trace_length=2)
        assert analyses[0].ir_vec[0]
        assert analyses[0].kinds[0] == RemovalKind.WW

    def test_kill_outside_scope_does_not_select(self):
        # With a scope of 1 trace, the killing write arrives after the
        # victim's trace has retired: no WW selection.
        source = (
            "addi r2, r0, 5\n"
            "nop\n"
            "nop\n"
            "nop\n"
            "addi r2, r0, 6\n"
            "out r2\nhalt"
        )
        _, analyses = analyses_of(source, trace_length=2, scope=1)
        assert not analyses[0].ir_vec[0]


class TestTriggerModes:
    SOURCE = (
        "addi r2, r0, 5\n"
        "addi r2, r0, 5\n"       # SV
        "addi r3, r0, 1\n"
        "addi r3, r0, 2\n"       # kills an unreferenced write: WW
        "beq r0, r0, next\n"     # BR
        "next: out r2\nout r3\nhalt"
    )

    def test_branch_only_mode_excludes_writes(self):
        _, analyses = analyses_of(self.SOURCE, triggers=("BR",))
        kinds = [k for a in analyses for k in a.kinds if k != RemovalKind.NONE]
        assert all(
            k & (RemovalKind.WW | RemovalKind.SV) == RemovalKind.NONE for k in kinds
        )
        assert any(k & RemovalKind.BR for k in kinds)

    def test_full_mode_includes_all(self):
        _, analyses = analyses_of(self.SOURCE)
        cats = {
            removal_category(k)
            for a in analyses
            for k in a.kinds
            if k != RemovalKind.NONE
        }
        assert {"SV", "WW", "BR"} <= cats

    def test_unknown_trigger_rejected(self):
        with pytest.raises(ValueError):
            IRDetector(triggers=("XX",))

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError):
            IRDetector(scope_traces=0)


class TestScopeMechanics:
    def test_analyses_cover_every_trace(self):
        source = "addi r1, r0, 50\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt"
        program, analyses = analyses_of(source, trace_length=8)
        sim = FunctionalSimulator(program)
        expected = len(list(TraceSelector(8).chunk(sim.steps())))
        assert len(analyses) == expected

    def test_ir_vec_length_matches_trace(self):
        source = "addi r1, r0, 10\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt"
        _, analyses = analyses_of(source, trace_length=8)
        for analysis in analyses:
            assert len(analysis.ir_vec) == len(analysis.kinds)

    def test_retirement_order_is_fifo(self):
        source = "addi r1, r0, 40\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt"
        _, analyses = analyses_of(source, trace_length=4)
        seqs = [a.trace_seq for a in analyses]
        assert seqs == sorted(seqs)
