"""Unit tests for the IR-predictor: per-entry removal confidence."""

from repro.core.ir_detector import TraceAnalysis
from repro.core.ir_predictor import IRPredictor, IRPredictorConfig
from repro.core.removal import RemovalKind
from repro.trace.trace_id import TraceId


def tid(n, outcomes=(True,)):
    return TraceId(0x1000 + 64 * n, tuple(outcomes))


def analysis(trace_id, ir_vec):
    kinds = tuple(
        RemovalKind.BR if bit else RemovalKind.NONE for bit in ir_vec
    )
    return TraceAnalysis(0, trace_id, tuple(ir_vec), kinds)


def train_sequence(pred, sequence, vec_of):
    """Simulate the driver's per-trace protocol: update path, then
    (with the detector's lag collapsed to zero) train removal."""
    for trace_id in sequence:
        pred.update_path(trace_id)
        pred.train_removal(analysis(trace_id, vec_of(trace_id)))


class TestConfidence:
    def test_stable_pair_reaches_threshold_and_predicts_removal(self):
        pred = IRPredictor(IRPredictorConfig(confidence_threshold=8))
        sequence = [tid(0), tid(1)] * 30
        train_sequence(pred, sequence, lambda t: (True, False))
        prediction = pred.predict()
        assert prediction.trace_id in (tid(0), tid(1))
        assert prediction.removal is not None
        assert prediction.removal.ir_vec == (True, False)

    def test_below_threshold_no_removal(self):
        pred = IRPredictor(IRPredictorConfig(confidence_threshold=1000))
        train_sequence(pred, [tid(0), tid(1)] * 20, lambda t: (True,))
        assert pred.predict().removal is None

    def test_flapping_vec_resets_confidence(self):
        pred = IRPredictor(IRPredictorConfig(confidence_threshold=4))
        flip = [0]

        def vec_of(trace_id):
            flip[0] += 1
            # Alternates per *entry visit* (each entry is trained every
            # other call in this two-trace cycle).
            return ((flip[0] // 2) % 2 == 0,)

        train_sequence(pred, [tid(0), tid(1)] * 30, vec_of)
        assert pred.predict().removal is None
        assert pred.confidence_resets > 10

    def test_unstable_path_context_resets_confidence(self):
        """The paper's safety property: if a context sometimes leads to
        trace A and sometimes to trace B, the entry's stored pair keeps
        flipping and removal never engages — even though each trace's
        own ir-vec is perfectly stable."""
        pred = IRPredictor(IRPredictorConfig(confidence_threshold=8))
        import random
        rng = random.Random(0)
        # Context X is followed by A or B with no learnable pattern.
        x, a, b = tid(10), tid(11), tid(12)
        sequence = []
        for _ in range(120):
            sequence.append(x)
            sequence.append(a if rng.random() < 0.5 else b)
        train_sequence(pred, sequence, lambda t: (True,))
        # Ask for the prediction after X: whatever it predicts, the
        # removal state at that entry must not be confident.
        pred.update_path(x)
        prediction = pred.predict()
        if prediction.trace_id in (a, b):
            assert prediction.removal is None

    def test_empty_vec_never_predicts_removal(self):
        pred = IRPredictor(IRPredictorConfig(confidence_threshold=2))
        train_sequence(pred, [tid(0), tid(1)] * 20, lambda t: (False, False))
        assert pred.predict().removal is None


class TestTrainingProtocol:
    def test_pending_queue_alignment(self):
        pred = IRPredictor()
        pred.update_path(tid(0))
        pred.update_path(tid(1))
        # Analyses arrive in feed order; a mismatched id is dropped
        # defensively rather than corrupting another entry.
        pred.train_removal(analysis(tid(0), (True,)))
        pred.train_removal(analysis(tid(9), (True,)))  # misaligned
        assert pred.trainings == 2

    def test_train_without_pending_is_noop(self):
        pred = IRPredictor()
        pred.train_removal(analysis(tid(0), (True,)))
        assert pred.trainings == 1

    def test_history_snapshot_roundtrip(self):
        pred = IRPredictor()
        for n in range(6):
            pred.update_path(tid(n))
        snap = pred.history_snapshot()
        pred.update_path(tid(99))
        pred.restore_history(snap)
        assert pred.history_snapshot() == snap
