"""Tests for the chip's operating modes (throughput / slipstream / reliable)."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.modes import (
    ModeResult,
    OperatingMode,
    reliable_config,
    run_mode,
)
from repro.core.slipstream import SlipstreamProcessor
from repro.fault.coverage import FaultOutcome, inject_one
from repro.fault.injector import FaultSite, TransientFault
from repro.isa.assembler import assemble

LOOP = """
main:
    addi r1, r0, 2000
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7
    sw   r2, 0(r10)
    addi r3, r0, 1
    addi r3, r0, 2
    add  r4, r4, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""

OTHER = """
main:
    addi r1, r0, 1500
loop:
    xor  r4, r4, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""


def program(source=LOOP, name="mode-test"):
    return assemble(source, name=name)


class TestThroughputMode:
    def test_two_programs_run_concurrently(self):
        result = run_mode(
            OperatingMode.THROUGHPUT, [program(), program(OTHER, "other")]
        )
        a, b = result.core_results
        assert result.useful_instructions == a.retired + b.retired
        assert result.cycles == max(a.cycles, b.cycles)
        assert result.redundancy == 0.0

    def test_throughput_beats_serial_execution(self):
        both = run_mode(
            OperatingMode.THROUGHPUT, [program(), program(OTHER, "other")]
        )
        serial_cycles = sum(r.cycles for r in both.core_results)
        assert both.cycles < serial_cycles

    def test_arity_validated(self):
        with pytest.raises(ValueError):
            run_mode(OperatingMode.THROUGHPUT, [])
        with pytest.raises(ValueError):
            run_mode(OperatingMode.THROUGHPUT, [program()] * 3)


class TestSlipstreamMode:
    def test_partial_redundancy(self):
        result = run_mode(OperatingMode.SLIPSTREAM, [program()])
        assert 0.0 < result.redundancy < 1.0
        assert result.core_results[0].a_removed > 0

    def test_arity_validated(self):
        with pytest.raises(ValueError):
            run_mode(OperatingMode.SLIPSTREAM, [program(), program()])


class TestReliableMode:
    def test_full_redundancy_no_removal(self):
        result = run_mode(OperatingMode.RELIABLE, [program()])
        slip = result.core_results[0]
        assert slip.a_removed == 0
        assert result.redundancy == 1.0

    def test_output_correct(self):
        reference = FunctionalSimulator(program()).run()
        result = run_mode(OperatingMode.RELIABLE, [program()])
        assert result.core_results[0].output == reference.output

    def test_every_transient_fault_is_safe(self):
        """With removal disabled every instruction is compared: an
        R-stream pipeline transient can never silently corrupt."""
        config = reliable_config()
        # Strike several spread-out points.
        for seq in (3000, 7001, 11002):
            result = inject_one(
                program(),
                TransientFault(FaultSite.R_TRANSIENT, seq, bit=5),
                config=config,
            )
            assert result.outcome in (
                FaultOutcome.DETECTED_RECOVERED,
                FaultOutcome.MASKED,
            ), f"seq {seq}: {result.outcome}"

    def test_overhead_over_slipstream_is_bounded(self):
        """AR-SMT costs the slipstream speedup but not much more: the
        R-stream still rides the delay buffer's predictions."""
        slip = run_mode(OperatingMode.SLIPSTREAM, [program()])
        reliable = run_mode(OperatingMode.RELIABLE, [program()])
        assert reliable.cycles <= slip.cycles * 1.6
