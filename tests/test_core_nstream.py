"""The N-stream redundancy engines (DESIGN.md §7.12): TMR majority
voting masks single-stream strikes in place with no rollback and no ECC
involvement; the replay-window detector catches strikes in replayed
windows and lets un-scrubbed windows escape; decorrelated contexts turn
layout-correlated silent agreement into detection."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.modes import (
    CAMPAIGN_MODES,
    ModeError,
    OperatingMode,
    REDUNDANCY_MODES,
    decorrelated_config,
    resolve_mode,
    run_mode,
)
from repro.core.nstream import (
    REPLAY_SCRUB_INTERVAL,
    REPLAY_WINDOW_LENGTH,
    NStreamResult,
    ReplayWindowProcessor,
    TMRProcessor,
)
from repro.core.recovery import MIN_RECOVERY_LATENCY
from repro.fault.coverage import (
    HANDLED_OUTCOMES,
    HARMFUL_OUTCOMES,
    FaultOutcome,
    inject_one,
    inject_one_nstream,
)
from repro.fault.injector import (
    DECORRELATION_ROTATION,
    FaultInjector,
    FaultSite,
    TransientFault,
)
from repro.isa.assembler import assemble

#: Accumulator loop: every ``add`` result feeds the final OUT, so a
#: strike on an ``add`` (seq 2 + 3k) always matters.  ~184 retirements
#: = 3 replay windows, of which only window 0 is scrubbed.
ACC = """
main:
    addi r1, r0, 60
    addi r4, r0, 0
loop:
    add  r4, r4, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""

#: ``add`` retirements by replay window (window length 64):
#: seq 11 lands in window 0 (scrubbed), 65 in window 1, 131 in
#: window 2 (both fast-forwarded: the escape path).
SCRUBBED_ADD = 11
ESCAPED_ADDS = (65, 131)


def program():
    return assemble(ACC, name="nstream-acc")


def reference():
    return FunctionalSimulator(program()).run()


class TestTMRFaultFree:
    def test_matches_functional_simulator(self):
        ref = reference()
        result = TMRProcessor(program()).run()
        assert isinstance(result, NStreamResult)
        assert result.output == ref.output
        assert result.retired == ref.instruction_count
        assert result.detections == 0
        assert result.recoveries == []

    def test_stream_count_validated(self):
        with pytest.raises(ValueError):
            TMRProcessor(program(), n_streams=2)
        with pytest.raises(ValueError):
            TMRProcessor(program(), n_streams=4)
        with pytest.raises(ValueError):
            TMRProcessor(program(), n_streams=1)

    def test_five_streams_agree(self):
        result = TMRProcessor(program(), n_streams=5).run()
        assert result.output == reference().output
        assert result.n_streams == 5

    def test_base_cycles_anchor_the_timing(self):
        anchored = TMRProcessor(program(), base_cycles=999).run()
        assert anchored.cycles == 999  # no repairs on a clean run


class TestTMRVoting:
    def test_transient_strike_is_outvoted(self):
        """A pipeline transient corrupts one replica's result signature;
        the other two outvote it at retirement and the architectural
        state never sees the flip."""
        fault = TransientFault(FaultSite.R_TRANSIENT, target_seq=SCRUBBED_ADD,
                               bit=3)
        result = inject_one_nstream(program(), fault, "tmr")
        assert result.outcome is FaultOutcome.MASKED_BY_VOTE
        assert result.mode == "tmr"
        assert result.detections == 1
        assert result.detect_latency == 0  # claimed at the same retirement

    def test_arch_strike_is_repaired_in_place(self):
        """An architectural strike survives its own retirement (the
        voter compares results, not whole contexts) and is caught when a
        dependent instruction disagrees — then the minority context is
        repaired from the voted majority."""
        fault = TransientFault(FaultSite.R_ARCH, target_seq=SCRUBBED_ADD,
                               bit=3)
        result = inject_one_nstream(program(), fault, "tmr")
        assert result.outcome is FaultOutcome.MASKED_BY_VOTE
        assert result.detections == 1
        assert result.detect_latency is not None and result.detect_latency > 0
        assert result.recovery_penalty >= MIN_RECOVERY_LATENCY

    def test_masked_by_vote_counts_as_handled_harm(self):
        assert FaultOutcome.MASKED_BY_VOTE in HARMFUL_OUTCOMES
        assert FaultOutcome.MASKED_BY_VOTE in HANDLED_OUTCOMES

    def test_vote_claims_strike_before_ecc(self):
        """Satellite: a single-bit R_ARCH strike under TMR must be
        outvoted *before* any ECC correction is attempted — classified
        ``MASKED_BY_VOTE``, never ``ECC_CORRECTED``, even when the
        campaign enables ECC."""
        fault = TransientFault(FaultSite.R_ARCH, target_seq=SCRUBBED_ADD,
                               bit=3)
        voted = inject_one_nstream(program(), fault, "tmr", ecc=True)
        assert voted.outcome is FaultOutcome.MASKED_BY_VOTE
        assert not voted.ecc_corrected
        # The identical strike through the slipstream pair *is* an ECC
        # correction — the contrast that pins the ordering.
        scrubbed = inject_one(program(), fault, ecc=True)
        assert scrubbed.outcome is FaultOutcome.ECC_CORRECTED
        assert scrubbed.ecc_corrected

    def test_five_streams_still_outvote_one(self):
        fault = TransientFault(FaultSite.R_TRANSIENT, target_seq=SCRUBBED_ADD,
                               bit=3)
        result = inject_one_nstream(program(), fault, "tmr", n_streams=5)
        assert result.outcome is FaultOutcome.MASKED_BY_VOTE


class TestReplayWindows:
    def test_fault_free_parity_and_accounting(self):
        ref = reference()
        result = ReplayWindowProcessor(program()).run()
        assert result.output == ref.output
        assert result.retired == ref.instruction_count
        assert result.detections == 0
        expected_windows = -(-result.retired // REPLAY_WINDOW_LENGTH)
        assert result.windows == expected_windows
        assert result.replayed_windows == -(
            -result.windows // REPLAY_SCRUB_INTERVAL
        )
        assert 0 < result.replayed_instructions <= result.retired

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            ReplayWindowProcessor(program(), window_len=0)
        with pytest.raises(ValueError):
            ReplayWindowProcessor(program(), scrub_interval=0)

    def test_strike_in_scrubbed_window_is_detected(self):
        """Window 0 is replayed: the recording carries the corrupted
        downstream values, the clean shadow re-execution disagrees, the
        primary rolls back to the replay's continuation."""
        fault = TransientFault(FaultSite.R_ARCH, target_seq=SCRUBBED_ADD,
                               bit=3)
        result = inject_one_nstream(program(), fault, "replay")
        assert result.outcome is FaultOutcome.DETECTED_RECOVERED
        assert result.detections == 1
        # Detection waits for the window boundary: latency spans the
        # rest of the 64-instruction window.
        assert 0 < result.detect_latency <= REPLAY_WINDOW_LENGTH
        assert result.recovery_penalty > MIN_RECOVERY_LATENCY

    @pytest.mark.parametrize("seq", ESCAPED_ADDS)
    def test_strike_in_unscrubbed_window_escapes(self, seq):
        """Windows 1 and 2 are fast-forwarded, not replayed: the shadow
        adopts the corrupted recorded writes and the strike escapes as
        silent corruption — the mode's deliberate coverage hole."""
        fault = TransientFault(FaultSite.R_ARCH, target_seq=seq, bit=3)
        result = inject_one_nstream(program(), fault, "replay")
        assert result.outcome is FaultOutcome.SILENT_CORRUPTION
        assert result.detections == 0

    def test_every_window_scrubbed_closes_the_hole(self):
        """scrub_interval=1 replays every window: the same escaped
        strikes become detections."""
        for seq in ESCAPED_ADDS:
            injector = FaultInjector(
                TransientFault(FaultSite.R_ARCH, target_seq=seq, bit=3)
            )
            run = ReplayWindowProcessor(
                program(), scrub_interval=1, fault_hook=injector
            ).run()
            assert injector.report.fired
            assert run.detections == 1
            assert run.output == reference().output

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            inject_one_nstream(
                program(),
                TransientFault(FaultSite.R_ARCH, target_seq=1, bit=3),
                "quadruple",
            )


class TestDecorrelatedStreams:
    FAULT = TransientFault(FaultSite.CORRELATED, target_seq=20, bit=3)

    def test_correlated_strike_silently_agrees_when_correlated(self):
        """Identical layouts: the A-side strike and its R-side companion
        flip the same bit of the same value, the comparison agrees, and
        the corruption is architectural in both contexts."""
        result = inject_one(program(), self.FAULT)
        assert result.outcome is FaultOutcome.SILENT_CORRUPTION
        assert result.detections == 0

    def test_decorrelation_breaks_the_agreement(self):
        """Shifted layouts: the companion strike lands on a rotated bit,
        the streams disagree at comparison, and the pair detects and
        recovers — the failure mode DME removes."""
        result = inject_one(program(), self.FAULT,
                            config=decorrelated_config())
        assert result.outcome is FaultOutcome.DETECTED_RECOVERED
        assert result.detections >= 1

    def test_companion_report_fields(self):
        injector = FaultInjector(self.FAULT, decorrelated=True)
        from repro.core.slipstream import SlipstreamProcessor

        SlipstreamProcessor(
            program(), decorrelated_config(), fault_hook=injector
        ).run()
        assert injector.report.fired
        assert injector.report.companion_struck
        assert not injector.report.companion_agreed

    def test_rotation_is_a_bijection_on_bit_indices(self):
        rotated = {(bit + DECORRELATION_ROTATION) % 32 for bit in range(32)}
        assert rotated == set(range(32))
        assert all(
            (bit + DECORRELATION_ROTATION) % 32 != bit for bit in range(32)
        )

    def test_decorrelated_config_is_clean_run_equivalent(self):
        """Decorrelation is undone at comparison time: a clean run's
        output is identical, only the transfer latency grows."""
        plain = run_mode(OperatingMode.SLIPSTREAM, [program()])
        deco = run_mode(OperatingMode.DECORRELATED, [program()])
        assert deco.core_results[0].output == plain.core_results[0].output
        assert deco.cycles >= plain.cycles


class TestRunModeDispatch:
    def test_registry_covers_the_campaign_modes(self):
        assert set(CAMPAIGN_MODES) <= set(REDUNDANCY_MODES)
        assert REDUNDANCY_MODES["tmr"].n_streams == 3
        assert REDUNDANCY_MODES["tmr"].compare == "vote"
        assert REDUNDANCY_MODES["replay"].recover == "replay"
        assert REDUNDANCY_MODES["decorrelated"].campaign_sites[-1] == \
            "correlated"

    def test_tmr_mode_runs_and_prices_redundancy(self):
        result = run_mode("tmr", [program()])
        assert result.mode is OperatingMode.TMR
        assert result.redundancy == 2.0
        assert result.core_results[1].output == reference().output

    def test_tmr_accepts_odd_stream_override(self):
        result = run_mode("tmr", [program()], n_streams=5)
        assert result.redundancy == 4.0

    def test_replay_mode_reports_partial_redundancy(self):
        result = run_mode("replay", [program()])
        assert result.mode is OperatingMode.REPLAY
        assert 0.0 < result.redundancy < 1.0
        assert result.core_results[1].output == reference().output

    def test_unknown_mode_is_structured(self):
        with pytest.raises(ModeError) as err:
            run_mode("bogus", [program()])
        assert err.value.mode == "bogus"
        assert "known modes" in err.value.hint
        assert isinstance(err.value, ValueError)  # back-compat

    def test_arity_error_is_structured(self):
        with pytest.raises(ModeError) as err:
            run_mode("tmr", [program(), program()])
        assert err.value.mode == "tmr"
        assert err.value.n_programs == 2
        assert "exactly one program" in err.value.hint

    def test_override_rejected_where_not_allowed(self):
        with pytest.raises(ModeError) as err:
            run_mode("slipstream", [program()], n_streams=5)
        assert "override" in err.value.hint

    def test_even_override_rejected(self):
        with pytest.raises(ModeError) as err:
            run_mode("tmr", [program()], n_streams=4)
        assert "odd" in err.value.hint

    def test_resolve_mode_accepts_enum_and_string(self):
        assert resolve_mode(OperatingMode.TMR).name == "tmr"
        assert resolve_mode("tmr") is resolve_mode(OperatingMode.TMR)
