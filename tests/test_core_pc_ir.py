"""Unit tests for the per-instruction (non-trace-based) IR mechanism."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.pc_ir_predictor import PCIRPredictor, PCIRPredictorConfig
from repro.core.removal import RemovalKind
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.isa.assembler import assemble


class TestPCIRPredictor:
    def test_unknown_pc_not_removable(self):
        assert not PCIRPredictor().removable(0x1000)

    def test_confidence_saturates(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=4))
        for _ in range(4):
            pred.train(0x1000, selected=True, kind=RemovalKind.SV)
        assert pred.removable(0x1000)
        assert pred.kind_of(0x1000) == RemovalKind.SV

    def test_nonselected_instance_resets(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=4))
        for _ in range(3):
            pred.train(0x1000, True, RemovalKind.WW)
        pred.train(0x1000, False, RemovalKind.NONE)
        for _ in range(3):
            pred.train(0x1000, True, RemovalKind.WW)
        assert not pred.removable(0x1000)
        assert pred.resets == 1

    def test_mispredicted_branch_resets(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=2))
        pred.train(0x2000, True, RemovalKind.BR)
        pred.train(0x2000, True, RemovalKind.BR, branch_ok=False)
        pred.train(0x2000, True, RemovalKind.BR)
        assert not pred.removable(0x2000)

    def test_independent_pcs(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=1))
        pred.train(0x1000, True, RemovalKind.SV)
        pred.train(0x1004, False, RemovalKind.NONE)
        assert pred.removable(0x1000)
        assert not pred.removable(0x1004)
        assert pred.confident_pcs == 1


class TestPCMechanismEndToEnd:
    SOURCE = """
    main:
        addi r1, r0, 2500
        addi r10, r0, 0x100000
    loop:
        addi r2, r0, 7
        sw   r2, 0(r10)
        addi r3, r0, 1
        addi r3, r0, 2
        add  r4, r4, r3
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r4
        halt
    """

    def test_output_matches_reference(self):
        program = assemble(self.SOURCE, name="pc-mode")
        reference = FunctionalSimulator(program).run()
        result = SlipstreamProcessor(
            assemble(self.SOURCE, name="pc-mode"),
            SlipstreamConfig(removal_mechanism="pc"),
        ).run()
        assert result.output == reference.output
        assert result.recovery_audit_shortfalls == 0

    def test_removal_engages(self):
        result = SlipstreamProcessor(
            assemble(self.SOURCE, name="pc-mode"),
            SlipstreamConfig(removal_mechanism="pc"),
        ).run()
        assert result.removal_fraction > 0.2

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="removal mechanism"):
            SlipstreamProcessor(
                assemble(self.SOURCE, name="pc-mode"),
                SlipstreamConfig(removal_mechanism="bogus"),
            )
