"""Unit tests for removal-kind taxonomy and the rename table."""

import pytest

from repro.core.removal import CATEGORIES, RemovalKind, removal_category
from repro.core.rename_table import OperandRenameTable


class TestRemovalCategory:
    def test_direct_triggers(self):
        assert removal_category(RemovalKind.BR) == "BR"
        assert removal_category(RemovalKind.WW) == "WW"
        assert removal_category(RemovalKind.SV) == "SV"

    def test_sv_priority_over_ww(self):
        assert removal_category(RemovalKind.SV | RemovalKind.WW) == "SV"

    def test_propagated_combinations(self):
        p = RemovalKind.PROPAGATED
        assert removal_category(p | RemovalKind.BR) == "P: BR"
        assert removal_category(p | RemovalKind.SV | RemovalKind.WW) == "P: SV,WW"
        assert (
            removal_category(p | RemovalKind.SV | RemovalKind.WW | RemovalKind.BR)
            == "P: SV,WW,BR"
        )

    def test_all_categories_reachable(self):
        produced = set()
        p = RemovalKind.PROPAGATED
        for kind in [
            RemovalKind.BR, RemovalKind.WW, RemovalKind.SV,
            p | RemovalKind.BR, p | RemovalKind.WW, p | RemovalKind.SV,
            p | RemovalKind.WW | RemovalKind.BR,
            p | RemovalKind.SV | RemovalKind.BR,
            p | RemovalKind.SV | RemovalKind.WW,
            p | RemovalKind.SV | RemovalKind.WW | RemovalKind.BR,
        ]:
            produced.add(removal_category(kind))
        assert produced == set(CATEGORIES)

    def test_none_rejected(self):
        with pytest.raises(ValueError):
            removal_category(RemovalKind.NONE)


class _Node:
    """Stand-in producer with a trace_seq, for rename-table tests."""

    def __init__(self, trace_seq=0):
        self.trace_seq = trace_seq


class TestOperandRenameTable:
    def test_read_unknown_returns_none(self):
        table = OperandRenameTable()
        assert table.read(("r", 1)) is None

    def test_write_then_read_returns_producer(self):
        table = OperandRenameTable()
        node = _Node()
        table.write(("r", 1), 5, node)
        assert table.read(("r", 1)) is node

    def test_read_sets_ref_bit(self):
        table = OperandRenameTable()
        first, second = _Node(), _Node()
        table.write(("r", 1), 5, first)
        table.read(("r", 1))
        outcome = table.write(("r", 1), 6, second)
        assert outcome.killed is first
        assert not outcome.killed_unreferenced

    def test_unreferenced_kill(self):
        table = OperandRenameTable()
        first, second = _Node(), _Node()
        table.write(("r", 1), 5, first)
        outcome = table.write(("r", 1), 6, second)
        assert outcome.killed is first and outcome.killed_unreferenced

    def test_silent_write_detected_and_producer_kept(self):
        table = OperandRenameTable()
        first, second = _Node(), _Node()
        table.write(("m", 0x100), 5, first)
        outcome = table.write(("m", 0x100), 5, second)
        assert outcome.silent
        assert table.read(("m", 0x100)) is first  # old producer live

    def test_silent_detection_can_be_disabled(self):
        table = OperandRenameTable()
        first, second = _Node(), _Node()
        table.write(("m", 0x100), 5, first)
        outcome = table.write(("m", 0x100), 5, second, detect_silent=False)
        assert not outcome.silent and outcome.killed is first

    def test_registers_and_memory_are_distinct_namespaces(self):
        table = OperandRenameTable()
        reg_node, mem_node = _Node(), _Node()
        table.write(("r", 4), 1, reg_node)
        table.write(("m", 4), 1, mem_node)
        assert table.read(("r", 4)) is reg_node
        assert table.read(("m", 4)) is mem_node

    def test_invalidation_by_trace(self):
        table = OperandRenameTable()
        node = _Node(trace_seq=3)
        table.write(("r", 1), 5, node)
        table.invalidate_if_stale(("r", 1), 3)
        assert table.read(("r", 1)) is None

    def test_invalidation_spares_newer_producer(self):
        table = OperandRenameTable()
        old, new = _Node(trace_seq=3), _Node(trace_seq=4)
        table.write(("r", 1), 5, old)
        table.write(("r", 1), 6, new)
        table.invalidate_if_stale(("r", 1), 3)
        assert table.read(("r", 1)) is new

    def test_peek_value(self):
        table = OperandRenameTable()
        table.write(("r", 2), 42, _Node())
        assert table.peek_value(("r", 2)) == 42
        assert table.peek_value(("r", 3)) is None
