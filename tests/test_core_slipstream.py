"""Integration tests for the slipstream co-simulation.

The central invariant: for any program, under any amount of instruction
removal, conventional misprediction, IR-misprediction and recovery, the
slipstream machine's R-stream output and retire count must be
bit-identical to plain functional execution.
"""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.isa.assembler import assemble
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore


REMOVAL_HEAVY = """
main:
    addi r1, r0, 4000
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7          # silent register write (after iteration 1)
    sw   r2, 0(r10)         # silent store
    addi r3, r0, 1          # dead write (killed below, unreferenced)
    addi r3, r0, 2
    add  r4, r4, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""

# A branch that is stable for a long stretch, then flips: the stable
# phase trains removal of the branch; the flip is an IR-misprediction.
PHASE_CHANGE = """
main:
    addi r1, r0, 3000
loop:
    slti r5, r1, 200        # 0 for the first 2800 iterations, then 1
    beq  r5, r0, common     # stable ... until it isn't
    addi r6, r6, 1
common:
    add  r4, r4, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    out  r6
    halt
"""

# A store that is silent for thousands of iterations and then changes
# value: removing it becomes wrong exactly once.
SILENT_THEN_EFFECTUAL = """
main:
    addi r1, r0, 3000
    addi r10, r0, 0x100000
loop:
    slti r2, r1, 100        # 0 ... then 1 near the end
    sw   r2, 0(r10)         # silent until r2 flips
    lw   r3, 0(r10)
    add  r4, r4, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""


def reference(source):
    program = assemble(source, name="ref")
    return FunctionalSimulator(program).run()


def slipstream(source, **config_kwargs):
    program = assemble(source, name="slip")
    config = SlipstreamConfig(**config_kwargs) if config_kwargs else None
    return SlipstreamProcessor(program, config).run()


class TestCorrectness:
    @pytest.mark.parametrize(
        "source", [REMOVAL_HEAVY, PHASE_CHANGE, SILENT_THEN_EFFECTUAL],
        ids=["removal-heavy", "phase-change", "silent-then-effectual"],
    )
    def test_output_matches_functional_execution(self, source):
        ref = reference(source)
        result = slipstream(source)
        assert result.output == ref.output
        assert result.retired == ref.instruction_count

    @pytest.mark.parametrize(
        "source", [REMOVAL_HEAVY, PHASE_CHANGE, SILENT_THEN_EFFECTUAL],
        ids=["removal-heavy", "phase-change", "silent-then-effectual"],
    )
    def test_recovery_tracking_is_sufficient(self, source):
        """The paper's claim: the recovery controller's address list
        suffices to repair the A-stream memory context."""
        result = slipstream(source)
        assert result.recovery_audit_shortfalls == 0

    def test_branch_only_mode_still_correct(self):
        ref = reference(REMOVAL_HEAVY)
        result = slipstream(REMOVAL_HEAVY, removal_triggers=("BR",))
        assert result.output == ref.output

    def test_deterministic(self):
        a = slipstream(PHASE_CHANGE)
        b = slipstream(PHASE_CHANGE)
        assert a.cycles == b.cycles
        assert a.a_removed == b.a_removed
        assert a.ir_mispredictions == b.ir_mispredictions


class TestInstructionRemoval:
    def test_substantial_removal_on_stable_loop(self):
        result = slipstream(REMOVAL_HEAVY)
        assert result.removal_fraction > 0.25

    def test_removal_categories_match_construction(self):
        result = slipstream(REMOVAL_HEAVY)
        cats = result.removed_by_category
        assert cats.get("SV", 0) > 0      # silent reg write + silent store
        assert cats.get("WW", 0) > 0      # dead write
        assert cats.get("BR", 0) > 0      # loop branch
        # SV should dominate: two silent instructions per iteration.
        assert cats["SV"] > cats["WW"]

    def test_branch_only_mode_removes_no_writes(self):
        result = slipstream(REMOVAL_HEAVY, removal_triggers=("BR",))
        for category in result.removed_by_category:
            assert "SV" not in category and "WW" not in category

    def test_confidence_threshold_gates_removal(self):
        eager = slipstream(REMOVAL_HEAVY, confidence_threshold=4)
        cautious = slipstream(REMOVAL_HEAVY, confidence_threshold=256)
        assert eager.a_removed > cautious.a_removed

    def test_a_stream_shorter_than_r_stream(self):
        result = slipstream(REMOVAL_HEAVY)
        assert result.a_executed < result.retired
        assert result.a_executed + result.a_removed >= result.retired * 0.95


class TestIRMisprediction:
    def test_phase_change_triggers_ir_misprediction(self):
        result = slipstream(PHASE_CHANGE)
        assert result.ir_mispredictions >= 1
        # ... but rarely (the paper reports < 0.05 per 1000).
        assert result.ir_mispredictions_per_1000 < 2.0

    def test_penalty_at_least_minimum(self):
        result = slipstream(PHASE_CHANGE)
        if result.ir_mispredictions:
            assert result.avg_ir_penalty >= 21

    def test_effectual_store_removal_detected(self):
        result = slipstream(SILENT_THEN_EFFECTUAL)
        ref = reference(SILENT_THEN_EFFECTUAL)
        assert result.output == ref.output
        # The flip either caused an IR-misprediction (detected &
        # recovered) or removal never got confident enough; both are
        # legal, but the run must have removed stores at some point to
        # make the test meaningful.
        assert result.removed_by_category.get("SV", 0) > 0

    def test_detections_accounted(self):
        result = slipstream(PHASE_CHANGE)
        assert sum(result.detections.values()) == result.ir_mispredictions


class TestTiming:
    def test_ipc_within_machine_bound(self):
        result = slipstream(REMOVAL_HEAVY)
        assert 0.1 < result.ipc <= SS_64x4.retire_width

    def test_r_stream_trails_a_stream(self):
        """The R-stream finishes just after the A-stream."""
        result = slipstream(REMOVAL_HEAVY)
        assert result.r_cycles >= result.a_cycles * 0.9

    def test_slipstream_beats_single_core_on_removal_heavy_code(self):
        program = assemble(REMOVAL_HEAVY, name="bench")
        base = SuperscalarCore(SS_64x4, program).run()
        slip = SlipstreamProcessor(assemble(REMOVAL_HEAVY, name="bench")).run()
        # Generous bound: at minimum it must not be dramatically slower.
        assert slip.cycles < base.cycles * 1.15

    def test_delay_buffer_backpressure_with_tiny_buffer(self):
        result = slipstream(REMOVAL_HEAVY, delay_buffer_capacity=32)
        assert result.delay_buffer_backpressure > 0

    def test_tiny_buffer_not_faster(self):
        big = slipstream(REMOVAL_HEAVY)
        small = slipstream(REMOVAL_HEAVY, delay_buffer_capacity=32)
        assert small.cycles >= big.cycles


class TestStatistics:
    def test_outstanding_recovery_addresses_bounded(self):
        """Paper: 'not too many outstanding addresses in practice'."""
        result = slipstream(REMOVAL_HEAVY)
        assert result.recovery_max_outstanding < 64

    def test_removal_fraction_consistent_with_categories(self):
        result = slipstream(REMOVAL_HEAVY)
        assert sum(result.removed_by_category.values()) == result.a_removed
