"""Tests for the SMT-partitioned slipstream configuration."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamProcessor
from repro.core.smt import smt_partition, smt_slipstream_config
from repro.isa.assembler import assemble
from repro.uarch.config import SS_128x8

LOOP = """
main:
    addi r1, r0, 8000
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7
    sw   r2, 0(r10)
    addi r3, r0, 1
    addi r3, r0, 2
    add  r4, r4, r3
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    halt
"""


class TestPartition:
    def test_default_split(self):
        a_core, r_core = smt_partition()
        assert a_core.issue_width + r_core.issue_width == SS_128x8.issue_width
        assert a_core.rob_size + r_core.rob_size <= SS_128x8.rob_size
        assert r_core.issue_width > a_core.issue_width

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            smt_partition(a_width=0)
        with pytest.raises(ValueError):
            smt_partition(a_width=8)

    def test_rob_overcommit_rejected(self):
        with pytest.raises(ValueError):
            smt_partition(rob_split=(100, 100))


class TestSMTSlipstream:
    def test_output_matches_functional(self):
        program = assemble(LOOP, name="smt")
        reference = FunctionalSimulator(program).run()
        result = SlipstreamProcessor(
            assemble(LOOP, name="smt"), smt_slipstream_config()
        ).run()
        assert result.output == reference.output
        assert result.recovery_audit_shortfalls == 0

    def test_removal_still_engages(self):
        result = SlipstreamProcessor(
            assemble(LOOP, name="smt"), smt_slipstream_config()
        ).run()
        assert result.removal_fraction > 0.2

    def test_wider_r_partition_lifts_retire_bound(self):
        """On a removal-heavy stream, the 5-wide R partition must break
        the 4-IPC ceiling that bounds the CMP configuration (the
        paper's motivation for the SMT variant)."""
        cmp_result = SlipstreamProcessor(assemble(LOOP, name="smt")).run()
        smt_result = SlipstreamProcessor(
            assemble(LOOP, name="smt"), smt_slipstream_config()
        ).run()
        assert cmp_result.ipc <= 4.0
        assert smt_result.ipc > 4.0
        assert smt_result.ipc > cmp_result.ipc
