"""Tests for statically-seeded IR prediction (SlipstreamConfig.static_hints).

Contract under test:

* mode off (the default) leaves the pipeline byte-identical — no hint
  state, no seeded predictor entries;
* mode on stays architecturally correct (outputs match the functional
  reference) because seeded facts are *proofs*, and the removal
  fraction may only benefit;
* statically-seeded predictor entries are pinned: the dynamic training
  reset path never evicts a proof.
"""

from repro.arch.functional import FunctionalSimulator
from repro.core.modes import static_hint_config
from repro.core.pc_ir_predictor import PCIRPredictor, PCIRPredictorConfig
from repro.core.removal import RemovalKind
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.eval.jobs import benchmark_program


class TestSeededPredictor:
    def test_seed_makes_pc_removable(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=8))
        pred.seed(0x1000, RemovalKind.SV)
        assert pred.removable(0x1000)
        assert pred.kind_of(0x1000) == RemovalKind.SV
        assert pred.seeded_pcs == 1

    def test_pinned_entry_survives_reset_path(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=4))
        pred.seed(0x1000, RemovalKind.WW)
        # A non-selected instance resets dynamic entries; a pinned
        # (statically-proven) entry must ride through it.
        pred.train(0x1000, selected=False, kind=RemovalKind.NONE)
        assert pred.removable(0x1000)

    def test_dynamic_entry_still_resets(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=2))
        pred.train(0x2000, True, RemovalKind.WW)
        pred.train(0x2000, True, RemovalKind.WW)
        assert pred.removable(0x2000)
        pred.train(0x2000, False, RemovalKind.NONE)
        assert not pred.removable(0x2000)

    def test_seed_does_not_lower_existing_confidence(self):
        pred = PCIRPredictor(PCIRPredictorConfig(confidence_threshold=2))
        for _ in range(5):
            pred.train(0x3000, True, RemovalKind.SV)
        before = pred.removable(0x3000)
        pred.seed(0x3000, RemovalKind.SV)
        assert pred.removable(0x3000) == before is True


class TestStaticHintMode:
    def test_config_default_off(self):
        assert SlipstreamConfig().static_hints is False
        assert static_hint_config().static_hints is True

    def test_mode_off_seeds_nothing(self):
        prog = benchmark_program("li", scale=1)
        proc = SlipstreamProcessor(prog, SlipstreamConfig())
        assert proc.pc_ir.seeded_pcs == 0
        assert proc._hint_pcs == frozenset()

    def test_mode_on_seeds_proven_pcs(self):
        prog = benchmark_program("li", scale=1)
        proc = SlipstreamProcessor(prog, static_hint_config())
        assert proc.pc_ir.seeded_pcs > 0
        assert proc._hint_pcs

    def test_output_identical_and_removal_no_worse(self):
        prog = benchmark_program("li", scale=1)
        base = SlipstreamProcessor(prog, SlipstreamConfig()).run()
        hint = SlipstreamProcessor(prog, static_hint_config()).run()
        ref = FunctionalSimulator(prog).run()
        assert base.output == ref.output
        assert hint.output == ref.output
        assert hint.removal_fraction >= base.removal_fraction
