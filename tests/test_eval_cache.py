"""The persistent result cache: key/fingerprint invalidation, corruption
tolerance, and the config-fingerprint fix for caller-supplied configs."""

import pickle

import pytest

from repro.core.slipstream import SlipstreamConfig
from repro.eval import jobs, models
from repro.eval.jobs import (
    MISS,
    DiskCache,
    JobKey,
    baseline_spec,
    code_fingerprint,
    slipstream_spec,
)
from repro.fingerprint import fingerprint
from repro.uarch.config import SS_64x4, SS_128x8

BENCH = "jpeg"


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache", code_version="v1")


@pytest.fixture
def fresh_caches(tmp_path):
    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    jobs.reset_simulation_count()
    models.configure_disk_cache(enabled=True, cache_dir=str(tmp_path / "cache"))
    yield tmp_path / "cache"
    models.clear_cache()
    models._DISK, models._DISK_ENABLED = saved


class TestConfigFingerprint:
    def test_stable_across_equal_configs(self):
        assert SlipstreamConfig().fingerprint() == SlipstreamConfig().fingerprint()

    def test_any_field_change_changes_fingerprint(self):
        base = SlipstreamConfig().fingerprint()
        assert SlipstreamConfig(confidence_threshold=4).fingerprint() != base
        assert SlipstreamConfig(delay_buffer_capacity=64).fingerprint() != base
        assert SlipstreamConfig(removal_triggers=("BR",)).fingerprint() != base

    def test_core_config_fingerprint(self):
        assert SS_64x4.fingerprint() == SS_64x4.fingerprint()
        assert SS_64x4.fingerprint() != SS_128x8.fingerprint()

    def test_fingerprint_handles_nested_structures(self):
        assert fingerprint([1, (2, 3), {"b": 2, "a": 1}]) == fingerprint(
            [1, [2, 3], {"a": 1, "b": 2}]
        )


class TestJobKeys:
    def test_custom_config_gets_distinct_key(self):
        default = slipstream_spec(BENCH).key
        tuned = slipstream_spec(
            BENCH, config=SlipstreamConfig(confidence_threshold=4)
        ).key
        assert default != tuned
        assert default.config_fingerprint != tuned.config_fingerprint

    def test_equivalent_config_shares_key(self):
        # A caller passing an explicitly-constructed default config must
        # hit the same cache entry as the no-config path.
        explicit = slipstream_spec(BENCH, config=SlipstreamConfig()).key
        implicit = slipstream_spec(BENCH).key
        assert explicit == implicit

    def test_keys_are_hashable_and_picklable(self):
        key = slipstream_spec(BENCH).key
        assert pickle.loads(pickle.dumps(key)) == key
        assert len({key, slipstream_spec(BENCH).key}) == 1


class TestDiskCacheInvalidation:
    def test_round_trip(self, cache):
        key = JobKey("ss64", BENCH)
        cache.store(key, {"cycles": 123})
        assert cache.load(key) == {"cycles": 123}

    def test_different_code_version_misses(self, cache, tmp_path):
        key = JobKey("ss64", BENCH)
        cache.store(key, "result-v1")
        newer = DiskCache(tmp_path / "cache", code_version="v2")
        assert newer.load(key) is MISS
        # The v1 entry is untouched (only unreadable files are discarded).
        assert cache.load(key) == "result-v1"

    def test_different_key_fields_miss(self, cache):
        cache.store(JobKey("ss64", BENCH), "r")
        assert cache.load(JobKey("ss64", BENCH, scale=2)) is MISS
        assert cache.load(JobKey("ss128", BENCH)) is MISS
        assert cache.load(JobKey("ss64", "li")) is MISS
        assert cache.load(JobKey("ss64", BENCH, config_fingerprint="x")) is MISS

    def test_code_fingerprint_tracks_sources(self):
        # Two calls agree (it is cached), and it looks like a short hash.
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16
        int(code_fingerprint(), 16)

    def test_prune_stale_removes_old_code_entries(self, cache, tmp_path):
        cache.store(JobKey("ss64", BENCH), "old")
        newer = DiskCache(tmp_path / "cache", code_version="v2")
        newer.store(JobKey("ss64", "li"), "new")
        assert newer.prune_stale() == 1
        assert newer.load(JobKey("ss64", "li")) == "new"
        assert cache.load(JobKey("ss64", BENCH)) is MISS


class TestDiskCacheCorruption:
    def test_garbage_file_is_discarded_not_fatal(self, cache):
        key = JobKey("ss64", BENCH)
        cache.store(key, "ok")
        path = cache.path_for(key)
        path.write_bytes(b"this is not a pickle")
        assert cache.load(key) is MISS
        assert not path.exists()  # discarded

    def test_truncated_pickle_is_discarded(self, cache):
        key = JobKey("ss64", BENCH)
        cache.store(key, {"big": list(range(1000))})
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.load(key) is MISS
        assert not path.exists()

    def test_wrong_payload_shape_is_discarded(self, cache):
        key = JobKey("ss64", BENCH)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(["not", "a", "payload", "dict"]))
        assert cache.load(key) is MISS
        assert not path.exists()

    def test_key_collision_payload_mismatch_is_discarded(self, cache):
        key = JobKey("ss64", BENCH)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": JobKey("ss64", "li"), "code": "v1", "result": 1}
        path.write_bytes(pickle.dumps(payload))
        assert cache.load(key) is MISS

    def test_unwritable_cache_dir_degrades_to_noop(self, tmp_path):
        # A plain file where the cache directory should be: mkdir and
        # every open fail, and the cache must shrug, not raise.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        cache = DiskCache(blocker, code_version="v1")
        cache.store(JobKey("ss64", BENCH), "r")  # must not raise
        assert cache.load(JobKey("ss64", BENCH)) is MISS

    def test_clear_removes_everything(self, cache):
        cache.store(JobKey("ss64", BENCH), 1)
        cache.store(JobKey("ss128", BENCH), 2)
        assert cache.clear() == 2
        assert cache.load(JobKey("ss64", BENCH)) is MISS


class TestCallerConfigCaching:
    def test_custom_config_run_is_cached(self, fresh_caches):
        config = SlipstreamConfig(confidence_threshold=4)
        first = models.run_slipstream_model(BENCH, config=config)
        assert jobs.simulation_count() == 1
        second = models.run_slipstream_model(
            BENCH, config=SlipstreamConfig(confidence_threshold=4)
        )
        assert second is first  # memory hit, no second simulation
        assert jobs.simulation_count() == 1

    def test_custom_config_survives_disk_round_trip(self, fresh_caches):
        config = SlipstreamConfig(confidence_threshold=4)
        first = models.run_slipstream_model(BENCH, config=config)
        models.clear_cache()
        jobs.reset_simulation_count()
        again = models.run_slipstream_model(BENCH, config=config)
        assert jobs.simulation_count() == 0  # pure disk hit
        assert again.ipc == first.ipc
        assert again.removed_by_category == first.removed_by_category

    def test_distinct_configs_do_not_collide(self, fresh_caches):
        loose = models.run_slipstream_model(
            BENCH, config=SlipstreamConfig(confidence_threshold=4))
        tight = models.run_slipstream_model(
            BENCH, config=SlipstreamConfig(confidence_threshold=128))
        assert jobs.simulation_count() == 2
        assert loose is not tight
