"""The remote backend and the digest-sharded daemon federation.

Three tiers, matching what each failure mode needs:

* codec/decode tests run with no server at all;
* :class:`~repro.eval.remote.RemoteBackend` tests run against an
  in-thread daemon (cheap, same-process);
* federation tests run against **subprocess** worker daemons — the
  in-process model memo (``models._CACHE``) is process-global, so
  exactly-once-fleet-wide can only be observed across real process
  boundaries, and killing a worker mid-batch needs a process to kill.
"""

import os
import signal
import subprocess
import sys
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import wait as wait_futures
from pathlib import Path

import pytest

from repro.eval import jobs, models
from repro.eval.backends import resolve_backend
from repro.eval.jobs import (
    baseline_spec,
    cache_entry_digest,
    chaos_spec,
    count_spec,
    fault_spec,
    injection_spec,
    mode_reference_spec,
    slipstream_spec,
)
from repro.eval.models import run_cached
from repro.eval.remote import (
    FederationBackend,
    RemoteBackend,
    RemoteJobError,
    RemoteProtocolError,
    RemoteVersionError,
    WorkerDigestError,
    decode_result_line,
    parse_worker_url,
)
import repro.eval.remote as remote_mod
from repro.eval.resilience import ChaosPlan, RetryPolicy
from repro.eval.serve import (
    ServeClient,
    SpecError,
    canonical_result_blob,
    result_payload,
    spec_from_json,
    spec_to_json,
    start_server_thread,
)
from repro.fault.injector import FaultSite
from repro.obs.registry import MetricsRegistry

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# Fixtures and helpers.
# ----------------------------------------------------------------------


@pytest.fixture
def fresh_caches():
    """Disable the disk cache and clear the in-process memo, so every
    comparison against inline execution starts cold."""
    saved = (models._DISK, models._DISK_ENABLED)
    models._DISK = None
    models._DISK_ENABLED = False
    models.clear_cache()
    jobs.reset_simulation_count()
    yield
    models.clear_cache()
    models._DISK, models._DISK_ENABLED = saved


@pytest.fixture
def daemon(fresh_caches):
    """An in-thread daemon for the RemoteBackend transport tests."""
    handle = start_server_thread(jobs=2, backend="thread",
                                 use_disk_cache=False)
    yield handle
    handle.stop()


def _spawn_worker(tmp_path, tag):
    """One worker daemon subprocess; returns (process, port)."""
    port_file = tmp_path / f"{tag}.port"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.eval", "serve", "--port", "0",
         "--port-file", str(port_file), "--jobs", "2",
         "--backend", "thread", "--cache-dir", str(tmp_path / f"c-{tag}")],
        env=env, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60.0
    while not port_file.exists() or not port_file.read_text().strip():
        if proc.poll() is not None:
            raise RuntimeError(f"worker {tag} exited {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(f"worker {tag} never bound a port")
        time.sleep(0.05)
    return proc, int(port_file.read_text().strip())


def _reap(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Two worker daemon subprocesses shared by the healthy-path
    federation tests (each test uses its own disjoint spec set and
    asserts on counter *deltas*)."""
    tmp = tmp_path_factory.mktemp("fleet")
    workers = [_spawn_worker(tmp, f"w{i}") for i in range(2)]
    yield workers
    _reap([proc for proc, _ in workers])


def _digest(result):
    return canonical_result_blob(result)[1]


def _inline_digest(spec):
    """The spec's digest under inline execution, forced cold."""
    models.clear_cache()
    return _digest(run_cached(spec))


def _worker_sims(port):
    client = ServeClient(port=port)
    try:
        return client.health()["stats"]["simulated"]
    finally:
        client.close()


# ----------------------------------------------------------------------
# Wire codec: spec encoding and result decoding (no server).
# ----------------------------------------------------------------------


class TestParseWorkerUrl:
    def test_host_port(self):
        assert parse_worker_url("127.0.0.1:8736") == ("127.0.0.1", 8736)

    def test_http_prefix_and_trailing_slash(self):
        assert parse_worker_url("http://worker-3:99/") == ("worker-3", 99)

    @pytest.mark.parametrize("bad", ["worker", ":8736", "host:", "host:x"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_worker_url(bad)


class TestSpecToJson:
    """spec_to_json is the inverse of spec_from_json; every encoding is
    roundtrip-verified by construction, so equality on keys is the
    whole contract."""

    @pytest.mark.parametrize("spec", [
        count_spec("jpeg"),
        baseline_spec("go", 2),
        slipstream_spec("jpeg", 1, ("BR",)),
        fault_spec("jpeg", 1, 3, (FaultSite.A_RESULT,)),
        injection_spec("li", FaultSite.R_TRANSIENT, 123, bit=30,
                       scale=2, ecc=True, mode="tmr"),
        mode_reference_spec("jpeg", "tmr"),
    ])
    def test_roundtrip(self, spec):
        assert spec_from_json(spec_to_json(spec)).key == spec.key

    def test_chaos_is_not_remotable(self):
        spec = chaos_spec("boom", ChaosPlan(behavior="raise"))
        with pytest.raises(SpecError, match="not remotable"):
            spec_to_json(spec)


class TestDecodeResultLine:
    def _line(self, spec, **kwargs):
        models.clear_cache()
        result = run_cached(spec)
        return result, result_payload(0, spec.key, "fresh", result,
                                      include_pickle=True, **kwargs)

    def test_roundtrip(self, fresh_caches):
        spec = count_spec("jpeg")
        result, line = self._line(spec, cpu_seconds=1.5, wall_seconds=2.5)
        decoded, wall, cpu = decode_result_line(line, spec, "w:1")
        assert _digest(decoded) == _digest(result)
        assert (wall, cpu) == (2.5, 1.5)

    def test_digest_mismatch_names_the_worker(self, fresh_caches):
        spec = count_spec("jpeg")
        _result, line = self._line(spec)
        line["digest"] = "0" * 24
        with pytest.raises(WorkerDigestError) as excinfo:
            decode_result_line(line, spec, "badhost:17")
        err = excinfo.value
        assert err.worker == "badhost:17"
        assert err.expected == "0" * 24
        assert "badhost:17" in str(err)
        assert err.actual in str(err)

    def test_remote_failure_line(self):
        spec = count_spec("jpeg")
        line = {"ok": False, "error": "JobTimeout: too slow"}
        with pytest.raises(RemoteJobError, match="too slow"):
            decode_result_line(line, spec, "w:1")

    def test_missing_pickle_is_protocol_error(self, fresh_caches):
        spec = count_spec("jpeg")
        _result, line = self._line(spec)
        del line["pickle"]
        with pytest.raises(RemoteProtocolError, match="no pickle"):
            decode_result_line(line, spec, "w:1")


# ----------------------------------------------------------------------
# RemoteBackend against an in-thread daemon.
# ----------------------------------------------------------------------


class TestRemoteBackend:
    def test_resolve_backend_names(self):
        backend = resolve_backend("remote:10.0.0.7:8736")
        assert isinstance(backend, RemoteBackend)
        assert backend.url == "10.0.0.7:8736"
        with pytest.raises(ValueError, match="remote"):
            resolve_backend("bogus")

    def test_results_identical_to_inline(self, daemon):
        backend = RemoteBackend(url=f"127.0.0.1:{daemon.port}")
        backend.start(4)
        try:
            # Pool width comes from the daemon, not the caller.
            assert backend.workers == 2
            specs = [count_spec(b) for b in ("li", "jpeg", "compress")]
            futures = [backend.submit(spec, None) for spec in specs]
            for spec, future in zip(specs, futures):
                result, wall, cpu, started, report = future.result(timeout=60)
                assert _digest(result) == _inline_digest(spec)
                assert cpu > 0.0 and wall > 0.0
                assert report is None
            assert not backend.broken()
        finally:
            backend.shutdown(wait=True)

    def test_not_remotable_spec_fails_its_future(self, daemon):
        backend = RemoteBackend(url=f"127.0.0.1:{daemon.port}")
        backend.start(1)
        try:
            future = backend.submit(
                chaos_spec("boom", ChaosPlan(behavior="raise")), None
            )
            with pytest.raises(SpecError, match="not remotable"):
                future.result(timeout=10)
        finally:
            backend.shutdown(wait=True)

    def test_version_gate(self, daemon, monkeypatch):
        monkeypatch.setattr(remote_mod, "code_fingerprint",
                            lambda: "someone-elses-simulator")
        backend = RemoteBackend(url=f"127.0.0.1:{daemon.port}")
        with pytest.raises(RemoteVersionError, match="not comparable"):
            backend.start(1)
        assert not backend.running

    def test_daemon_death_breaks_the_backend(self, fresh_caches):
        handle = start_server_thread(jobs=1, backend="thread",
                                     use_disk_cache=False)
        backend = RemoteBackend(url=f"127.0.0.1:{handle.port}")
        backend.start(1)
        try:
            handle.stop()
            future = backend.submit(count_spec("jpeg"), None)
            with pytest.raises(BrokenExecutor):
                future.result(timeout=30)
            assert backend.broken()
        finally:
            backend.shutdown(wait=True)

    def test_restart_after_shutdown(self, daemon):
        backend = RemoteBackend(url=f"127.0.0.1:{daemon.port}")
        backend.start(1)
        backend.shutdown(wait=True)
        assert not backend.running and backend.workers == 0
        backend.start(1)
        try:
            future = backend.submit(count_spec("jpeg"), None)
            result, *_ = future.result(timeout=60)
            assert _digest(result) == _inline_digest(count_spec("jpeg"))
        finally:
            backend.shutdown(wait=True)


# ----------------------------------------------------------------------
# Federation across subprocess workers.
# ----------------------------------------------------------------------


class TestFederation:
    def test_exactly_once_fleet_wide(self, fleet, fresh_caches):
        """A cold batch (with a duplicated spec) across two workers:
        every unique job simulates exactly once *fleet-wide*, and every
        digest equals inline execution."""
        urls = [f"127.0.0.1:{port}" for _, port in fleet]
        specs = [count_spec(b, scale=s)
                 for b in ("li", "jpeg", "compress", "gcc")
                 for s in (1, 2)]
        submitted = specs + [specs[0]]  # a duplicate must dedup remotely
        sims_before = sum(_worker_sims(port) for _, port in fleet)
        metrics = MetricsRegistry()
        fed = FederationBackend(urls, local="inline", metrics=metrics)
        fed.start(2)
        try:
            futures = [fed.submit(spec, None) for spec in submitted]
            for spec, future in zip(submitted, futures):
                result, *_ = future.result(timeout=300)
                assert _digest(result) == _inline_digest(spec)
        finally:
            fed.shutdown(wait=True)
        sims_after = sum(_worker_sims(port) for _, port in fleet)
        assert sims_after - sims_before == len(specs)
        snapshot = metrics.snapshot()
        assert snapshot["federation.jobs_forwarded"] == len(submitted)
        assert snapshot["federation.worker_failures"] == 0
        assert snapshot["federation.jobs_local"] == 0

    def test_front_daemon_end_to_end(self, fleet, fresh_caches):
        """An HTTP front started with worker URLs shards a batch over
        the fleet, streams identical-to-inline results, dedups a warm
        replay without re-simulating, and exposes federation state on
        /v1/health and /v1/metrics."""
        urls = [f"127.0.0.1:{port}" for _, port in fleet]
        specs = [count_spec(b, scale=5)
                 for b in ("li", "jpeg", "compress", "gcc")]
        payload = [spec_to_json(spec) for spec in specs]
        sims_before = sum(_worker_sims(port) for _, port in fleet)
        front = start_server_thread(jobs=2, backend="inline",
                                    use_disk_cache=False, workers=urls)
        try:
            client = ServeClient(port=front.port)
            cold = client.submit_all(payload)
            warm = client.submit_all(payload)
            health = client.health()
            metrics = client.metrics()["metrics"]
            client.close()
        finally:
            front.stop()
        sims_after = sum(_worker_sims(port) for _, port in fleet)

        assert all(line["ok"] for line in cold + warm)
        by_index = {line["index"]: line for line in cold}
        for index, spec in enumerate(specs):
            assert by_index[index]["digest"] == _inline_digest(spec)
        warm_by_index = {line["index"]: line for line in warm}
        for index in range(len(specs)):
            assert warm_by_index[index]["digest"] == by_index[index]["digest"]
        # The warm replay was served from the front's memory, not
        # re-simulated: the fleet ran each unique job exactly once.
        assert sims_after - sims_before == len(specs)
        states = health["federation"]
        assert [s["alive"] for s in states] == [True, True]
        assert health["backend"] == "federation"
        assert metrics["federation.jobs_forwarded"] == len(specs)
        assert metrics["serve.jobs_served"] == 2 * len(specs)

    def test_worker_killed_mid_batch_migrates(self, tmp_path, fresh_caches):
        """SIGKILL one worker while its batch is in flight: un-acked
        jobs migrate to the survivor; nothing is lost, every result
        still matches inline execution."""
        workers = [_spawn_worker(tmp_path, f"k{i}") for i in range(2)]
        try:
            urls = [f"127.0.0.1:{port}" for _, port in workers]
            candidates = [
                count_spec(b, scale=s)
                for b in ("li", "jpeg", "compress", "gcc",
                          "go", "perl", "m88ksim", "vortex")
                for s in (6, 7, 8)
            ]
            victim = int(cache_entry_digest(candidates[0].key)[:2], 16) % 2
            specs = [
                spec for spec in candidates
                if int(cache_entry_digest(spec.key)[:2], 16) % 2 == victim
            ][:6]
            assert len(specs) == 6

            metrics = MetricsRegistry()
            fed = FederationBackend(urls, local="inline", metrics=metrics,
                                    policy=RetryPolicy(max_retries=2))
            fed.start(2)
            try:
                futures = [fed.submit(spec, None) for spec in specs]
                # Kill the victim as soon as its first result lands.
                wait_futures(futures, return_when="FIRST_COMPLETED")
                workers[victim][0].send_signal(signal.SIGKILL)
                for spec, future in zip(specs, futures):
                    result, *_ = future.result(timeout=300)
                    assert _digest(result) == _inline_digest(spec)
                states = fed.worker_states()
                assert states[victim]["alive"] is False
                assert states[victim]["error"]
                assert states[1 - victim]["alive"] is True
            finally:
                fed.shutdown(wait=True)
            snapshot = metrics.snapshot()
            assert snapshot["federation.worker_failures"] == 1
            assert snapshot["federation.jobs_migrated"] >= 1
        finally:
            _reap([proc for proc, _ in workers])

    def test_zero_live_workers_degrades_to_local(self, fresh_caches):
        """Nothing listening on any worker URL: the federation starts
        anyway, records the failures, and serves jobs from the local
        fallback backend with correct results."""
        metrics = MetricsRegistry()
        fed = FederationBackend(["127.0.0.1:1", "127.0.0.1:9"],
                                local="inline", metrics=metrics)
        fed.start(1)
        try:
            assert fed.workers == 1  # the local fallback's width
            assert all(not s["alive"] for s in fed.worker_states())
            spec = count_spec("jpeg")
            result, *_ = fed.submit(spec, None).result(timeout=60)
            assert _digest(result) == _inline_digest(spec)
        finally:
            fed.shutdown(wait=True)
        snapshot = metrics.snapshot()
        assert snapshot["federation.worker_failures"] == 2
        assert snapshot["federation.jobs_local"] == 1
        assert snapshot["federation.jobs_forwarded"] == 0
