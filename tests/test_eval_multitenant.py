"""Multi-tenant correctness of one shared cache root.

The eval daemon (and plain concurrent invocations) point many threads
and processes at one ``.cache/repro-eval`` directory; these tests pin
the concurrency fixes that make that safe: digest-sharded entries with
flat-legacy read compatibility, per-call-unique tmp files (plus orphan
sweeping), read-merge-write oracle persistence, and the off-main-thread
per-attempt timeout fallback.
"""

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.eval.jobs import (
    MISS,
    DiskCache,
    count_spec,
    run_attempt,
    simulate,
    unique_tmp_path,
)
from repro.eval.oracle import (
    EWMA_ALPHA,
    DurationOracle,
    _read_durations,
    job_digest,
)
from repro.eval.resilience import JobTimeout

BENCHES = ("jpeg", "go", "compress")


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache", code_version="v1")


# ----------------------------------------------------------------------
# Sharded layout + flat-legacy migration.
# ----------------------------------------------------------------------


class TestShardedLayout:
    def test_store_writes_digest_sharded(self, cache):
        key = count_spec("jpeg").key
        cache.store(key, 123)
        path = cache.path_for(key)
        assert path.parent != cache.root
        assert path.parent.parent == cache.root
        assert len(path.parent.name) == 2
        assert path.exists()
        assert cache.load(key) == 123

    def test_flat_legacy_entries_still_load(self, cache):
        key = count_spec("jpeg").key
        cache.store(key, 456)
        # Demote to the pre-sharding flat layout, as an old cache would
        # have written it.
        os.replace(cache.path_for(key), cache.legacy_path_for(key))
        assert cache.load(key) == 456

    def test_sharded_shadows_legacy(self, cache):
        key = count_spec("jpeg").key
        cache.legacy_path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.store(key, "new")
        # A stale flat entry left behind by an old writer must lose to
        # the sharded one.
        import pickle

        cache.legacy_path_for(key).write_bytes(pickle.dumps("old"))
        assert cache.load(key) == "new"

    def test_clear_walks_both_layouts(self, cache):
        k1, k2 = count_spec("jpeg").key, count_spec("go").key
        cache.store(k1, 1)
        cache.store(k2, 2)
        os.replace(cache.path_for(k2), cache.legacy_path_for(k2))
        assert cache.clear() == 2
        assert cache.load(k1) is MISS
        assert cache.load(k2) is MISS

    def test_prune_stale_walks_both_layouts(self, cache):
        stale = DiskCache(cache.root, code_version="old")
        k1, k2 = count_spec("jpeg").key, count_spec("go").key
        stale.store(k1, 1)
        stale.store(k2, 2)
        os.replace(stale.path_for(k2), stale.legacy_path_for(k2))
        fresh = DiskCache(cache.root, code_version="new")
        assert fresh.prune_stale() == 2


# ----------------------------------------------------------------------
# Tmp files: uniqueness and orphan sweeping.
# ----------------------------------------------------------------------


class TestTmpFiles:
    def test_unique_across_calls_and_threads(self, tmp_path):
        target = tmp_path / "entry.pkl"
        seen = []
        lock = threading.Lock()

        def grab():
            paths = [unique_tmp_path(target) for _ in range(50)]
            with lock:
                seen.extend(paths)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == len(seen)
        assert all(".tmp" in p.name for p in seen)

    def test_prune_stale_sweeps_aged_orphans(self, cache):
        key = count_spec("jpeg").key
        cache.store(key, 1)
        orphan_flat = cache.root / "dead.pkl.tmp1-2-3"
        shard = cache.path_for(key).parent
        orphan_shard = shard / "dead.pkl.tmp4-5-6"
        for orphan in (orphan_flat, orphan_shard):
            orphan.write_bytes(b"partial write from a crashed process")
        assert cache.prune_stale(tmp_age_seconds=0.0) == 2
        assert not orphan_flat.exists()
        assert not orphan_shard.exists()
        assert cache.load(key) == 1

    def test_prune_stale_keeps_young_tmps(self, cache):
        cache.root.mkdir(parents=True, exist_ok=True)
        young = cache.root / "live.pkl.tmp1-2-3"
        young.write_bytes(b"another writer, mid-replace")
        assert cache.prune_stale(tmp_age_seconds=3600.0) == 0
        assert young.exists()

    def test_clear_sweeps_orphans_unconditionally(self, cache):
        key = count_spec("jpeg").key
        cache.store(key, 1)
        orphan = cache.root / "dead.pkl.tmp9-9-9"
        orphan.write_bytes(b"junk")
        assert cache.clear() == 2
        assert not orphan.exists()


# ----------------------------------------------------------------------
# Many tenants, one root.
# ----------------------------------------------------------------------


def _tenant_pass(root, benches):
    """One tenant's sweep against the shared root (importable so a
    spawned process can run it too)."""
    cache = DiskCache(root, code_version="vtest")
    out = {}
    for bench in benches:
        spec = count_spec(bench)
        hit = cache.load(spec.key)
        if hit is MISS:
            hit = simulate(spec)
            cache.store(spec.key, hit)
        out[bench] = hit
    return out


class TestSharedRootHammer:
    def _assert_identical_to_inline(self, results, reference):
        for out in results:
            assert out == reference

    def _assert_no_tmp_residue(self, root):
        leftovers = sorted(root.glob("**/*.tmp*"))
        assert leftovers == []

    def test_threads_hammering_one_root(self, tmp_path):
        root = tmp_path / "cache"
        reference = {b: simulate(count_spec(b)) for b in BENCHES}
        with ThreadPoolExecutor(max_workers=8) as pool:
            # Overlapping job sets: every tenant wants every benchmark,
            # in a different order, so the same key races constantly.
            futures = [
                pool.submit(_tenant_pass, root,
                            BENCHES[i % len(BENCHES):] + BENCHES[:i % len(BENCHES)])
                for i in range(8)
            ]
            results = [f.result() for f in futures]
        self._assert_identical_to_inline(results, reference)
        self._assert_no_tmp_residue(root)
        # Every tenant ends with a loadable, identical cache.
        after = DiskCache(root, code_version="vtest")
        for bench in BENCHES:
            assert after.load(count_spec(bench).key) == reference[bench]

    def test_processes_hammering_one_root(self, tmp_path):
        root = tmp_path / "cache"
        reference = {b: simulate(count_spec(b)) for b in BENCHES[:2]}
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_tenant_pass, root, BENCHES[:2]) for _ in range(2)
            ]
            results = [f.result() for f in futures]
        self._assert_identical_to_inline(results, reference)
        self._assert_no_tmp_residue(root)

    def test_legacy_entries_served_during_hammer(self, tmp_path):
        root = tmp_path / "cache"
        seed = DiskCache(root, code_version="vtest")
        reference = {}
        for bench in BENCHES:
            spec = count_spec(bench)
            reference[bench] = simulate(spec)
            seed.store(spec.key, reference[bench])
            os.replace(seed.path_for(spec.key), seed.legacy_path_for(spec.key))
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [
                f.result()
                for f in [pool.submit(_tenant_pass, root, BENCHES)
                          for _ in range(4)]
            ]
        self._assert_identical_to_inline(results, reference)


# ----------------------------------------------------------------------
# Oracle persistence: read-merge-write, no lost updates.
# ----------------------------------------------------------------------


class TestOracleMerge:
    def test_disjoint_saves_both_survive(self, tmp_path):
        path = tmp_path / "durations.json"
        a = DurationOracle(path)
        b = DurationOracle(path)
        key_a, key_b = count_spec("jpeg").key, count_spec("go").key
        a.observe(key_a, 1.0)
        b.observe(key_b, 2.0)
        a.save()
        b.save()  # last-writer-wins would drop key_a here
        on_disk = _read_durations(path)
        assert on_disk[job_digest(key_a)] == pytest.approx(1.0)
        assert on_disk[job_digest(key_b)] == pytest.approx(2.0)

    def test_same_key_concurrent_update_is_folded(self, tmp_path):
        path = tmp_path / "durations.json"
        a = DurationOracle(path)
        b = DurationOracle(path)
        key = count_spec("jpeg").key
        a.observe(key, 1.0)
        b.observe(key, 3.0)
        a.save()
        b.save()
        # B must not clobber A: its estimate is EWMA-folded into A's.
        expected = EWMA_ALPHA * 3.0 + (1.0 - EWMA_ALPHA) * 1.0
        assert _read_durations(path)[job_digest(key)] == pytest.approx(expected)

    def test_unchanged_disk_key_is_overwritten_not_folded(self, tmp_path):
        path = tmp_path / "durations.json"
        a = DurationOracle(path)
        key = count_spec("jpeg").key
        a.observe(key, 1.0)
        a.save()
        # Same oracle keeps learning with nobody else writing: its own
        # refined EWMA stands verbatim, no self-folding.
        a.observe(key, 2.0)
        expected = a.estimate(key)
        a.save()
        assert _read_durations(path)[job_digest(key)] == pytest.approx(expected)

    def test_many_threads_no_lost_updates(self, tmp_path):
        path = tmp_path / "durations.json"
        keys = [count_spec("jpeg", scale).key for scale in range(1, 9)]

        def learn(index):
            oracle = DurationOracle(path)
            oracle.observe(keys[index], float(index + 1))
            oracle.save()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(learn, range(8)))
        on_disk = _read_durations(path)
        for index, key in enumerate(keys):
            assert on_disk[job_digest(key)] == pytest.approx(float(index + 1))

    def test_save_adopts_merged_view(self, tmp_path):
        path = tmp_path / "durations.json"
        a = DurationOracle(path)
        b = DurationOracle(path)
        key_a, key_b = count_spec("jpeg").key, count_spec("go").key
        a.observe(key_a, 1.0)
        a.save()
        b.observe(key_b, 2.0)
        b.save()
        # B read A's entry during the merge; its estimates now use it.
        assert b.estimate(key_a) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Per-attempt timeouts off the main thread.
# ----------------------------------------------------------------------


class TestOffMainThreadTimeout:
    def _run_in_thread(self, fn):
        box = {}

        def target():
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        if "error" in box:
            raise box["error"]
        return box["value"]

    def test_timeout_enforced_off_main_thread(self):
        # SIGALRM cannot be armed here; the monotonic post-hoc deadline
        # must still classify the overrun as JobTimeout.
        spec = count_spec("jpeg")
        with pytest.raises(JobTimeout):
            self._run_in_thread(lambda: run_attempt(spec, 1e-6))

    def test_no_timeout_off_main_thread_succeeds(self):
        spec = count_spec("jpeg")
        result, wall, cpu, started, _report = self._run_in_thread(
            lambda: run_attempt(spec, None)
        )
        assert result == simulate(spec)
        assert wall >= 0.0 and cpu >= 0.0
        assert started <= time.monotonic()

    def test_generous_deadline_off_main_thread_succeeds(self):
        spec = count_spec("jpeg")
        result, *_ = self._run_in_thread(lambda: run_attempt(spec, 600.0))
        assert result == simulate(spec)

    def test_main_thread_still_uses_sigalrm(self):
        # The signal path must remain intact for spawned pool workers
        # (whose attempts run on the worker's main thread).
        spec = count_spec("jpeg")
        result, *_ = run_attempt(spec, 600.0)
        assert result == simulate(spec)
