"""Unit tests for eval metrics, reporting and cheap experiment pieces."""

import pytest

from repro.eval.experiments import PAPER, table2
from repro.eval.metrics import (
    arithmetic_mean,
    geometric_mean_speedup,
    per_1000,
    rank_order,
)
from repro.eval.reporting import (
    render_bar_series,
    render_stacked_fractions,
    render_table,
)


class TestMetrics:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_arithmetic_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_geometric_mean_speedup(self):
        assert geometric_mean_speedup([0.0, 0.0]) == pytest.approx(0.0)
        assert geometric_mean_speedup([100.0]) == pytest.approx(100.0)
        # geomean of (2x, 0.5x) is 1x.
        assert geometric_mean_speedup([100.0, -50.0]) == pytest.approx(0.0)

    def test_geometric_mean_speedup_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean_speedup([])

    def test_geometric_mean_speedup_impossible_gain_rejected(self):
        """Gains at or below -100% have no real geometric mean; the
        error must name the offending gain instead of surfacing as a
        math-domain error (regression: used to raise from math.pow or
        silently return a complex-derived value)."""
        with pytest.raises(ValueError, match="-100"):
            geometric_mean_speedup([10.0, -100.0])
        with pytest.raises(ValueError, match="-250"):
            geometric_mean_speedup([-250.0])
        # Just above the boundary is still legal.
        assert geometric_mean_speedup([-99.9]) == pytest.approx(-99.9)

    def test_per_1000(self):
        assert per_1000(5, 1000) == 5.0
        assert per_1000(5, 0) == 0.0

    def test_rank_order(self):
        assert rank_order({"a": 1.0, "b": 3.0, "c": 2.0}) == ["b", "c", "a"]


class TestRendering:
    ROWS = [
        {"benchmark": "m88ksim", "gain_pct": 27.1},
        {"benchmark": "go", "gain_pct": -0.5},
    ]

    def test_render_table_contains_rows_and_headers(self):
        text = render_table(self.ROWS, ["benchmark", "gain_pct"],
                            headers=["bench", "gain"], title="T")
        assert "bench" in text and "m88ksim" in text and "27.10" in text
        assert text.startswith("T\n=")

    def test_render_bar_series_scales_and_signs(self):
        text = render_bar_series(self.ROWS, "benchmark", "gain_pct")
        lines = text.splitlines()
        assert "27.1%" in lines[0]
        assert "-" in lines[1]  # negative bar marked

    def test_render_stacked_fractions(self):
        rows = [{
            "benchmark": "x",
            "total_fraction": 0.5,
            "categories": {"BR": 0.2, "SV": 0.3},
        }]
        text = render_stacked_fractions(rows, ["BR", "SV"])
        assert "50.0" in text and "20.0" in text and "30.0" in text


class TestCheapExperiments:
    def test_table2_structure(self):
        config = table2()
        assert "single_processor" in config
        assert "slipstream_components" in config
        assert config["single_processor"]["rob"] == 64
        assert config["slipstream_components"]["confidence_threshold"] == 32
        assert "21-cycle minimum" in config["slipstream_components"]["recovery"]

    def test_paper_reference_numbers_complete(self):
        for key in ("base_ipc", "base_misp_per_1000", "slip_gain_pct",
                    "removal_fraction", "instr_count_millions"):
            assert set(PAPER[key]) == {
                "compress", "gcc", "go", "jpeg", "li", "m88ksim",
                "perl", "vortex",
            }
