"""The resilient execution layer: per-job timeouts, bounded retries
with deterministic backoff, pool-crash recovery with correct blame
attribution (poison quarantine vs. innocent requeue vs. abort), and
checkpoint/resume through the persistent cache.

Chaos jobs (:mod:`repro.eval.resilience`) script the failures — raise,
sleep past the timeout, ``os._exit`` the worker, fail N times then
succeed — as first-class job specs, so the scripted behaviour crosses
the process boundary like any real job."""

import time

import pytest

from repro.eval import jobs, models
from repro.eval.jobs import chaos_spec, count_spec, run_attempt
from repro.eval.profiling import stats_payload
from repro.eval.resilience import (
    AttemptRecord,
    ChaosError,
    ChaosPlan,
    JobTimeout,
    RetryPolicy,
    execute_chaos,
)
from repro.eval.runner import ExperimentRunner, RunnerError

BENCH = "jpeg"  # the cheapest workload in the suite

#: Fast backoff for tests: semantics identical, no multi-second sleeps.
FAST = dict(backoff_base_seconds=0.01, backoff_cap_seconds=0.05)


@pytest.fixture
def fresh_caches(tmp_path):
    """Point the disk cache at a temp dir; leave no global state behind."""
    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    jobs.reset_simulation_count()
    models.configure_disk_cache(enabled=True, cache_dir=str(tmp_path / "cache"))
    yield tmp_path / "cache"
    models.clear_cache()
    models._DISK, models._DISK_ENABLED = saved


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base_seconds=0.25, backoff_cap_seconds=2.0)
        assert policy.backoff_seconds(1) == 0.25
        assert policy.backoff_seconds(2) == 0.5
        assert policy.backoff_seconds(3) == 1.0
        assert policy.backoff_seconds(4) == 2.0
        assert policy.backoff_seconds(10) == 2.0  # capped

    def test_hard_deadline_follows_timeout(self):
        assert RetryPolicy().hard_deadline_seconds is None
        policy = RetryPolicy(timeout_seconds=2.0, hard_timeout_factor=4.0)
        assert policy.hard_deadline_seconds == 8.0

    @pytest.mark.parametrize("kwargs", [
        {"timeout_seconds": 0.0},
        {"timeout_seconds": -1.0},
        {"max_retries": -1},
        {"poison_threshold": 0},
        {"backoff_base_seconds": -0.1},
        {"hard_timeout_factor": 0.5},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestChaosPlans:
    def test_flaky_needs_state_file(self):
        with pytest.raises(ValueError):
            ChaosPlan(behavior="flaky", fail_times=1)

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(behavior="explode")

    def test_flaky_counts_attempts_across_calls(self, tmp_path):
        plan = ChaosPlan(behavior="flaky", fail_times=2,
                         state_file=str(tmp_path / "flaky"))
        for _ in range(2):
            with pytest.raises(ChaosError):
                execute_chaos(plan)
        assert execute_chaos(plan) == "ok"

    def test_chaos_jobs_are_cacheable_specs(self):
        plan = ChaosPlan(behavior="ok")
        assert chaos_spec("a", plan).key == chaos_spec("a", plan).key
        assert chaos_spec("a", plan).key != chaos_spec("b", plan).key


class TestAttemptTimeout:
    def test_run_attempt_times_out_in_process(self):
        spec = chaos_spec("sleepy", ChaosPlan(behavior="sleep", seconds=30))
        t0 = time.perf_counter()
        with pytest.raises(JobTimeout):
            run_attempt(spec, timeout_seconds=0.2)
        assert time.perf_counter() - t0 < 5.0

    def test_inline_timeout_kills_the_job_not_the_pass(self, fresh_caches):
        # 3s: far below the 30s sleep, far above the count job even on
        # a heavily loaded single-core machine.
        policy = RetryPolicy(timeout_seconds=3.0, max_retries=1, **FAST)
        specs = [chaos_spec("sleepy", ChaosPlan(behavior="sleep", seconds=30)),
                 count_spec(BENCH)]
        t0 = time.perf_counter()
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=1, policy=policy).run(specs)
        assert time.perf_counter() - t0 < 20.0  # not 2 x 30s
        stats = excinfo.value.stats
        assert stats.timeouts == 2  # first attempt + one retry
        assert stats.retried == 1
        assert stats.simulated == 1  # the count job survived
        failed = [r for r in stats.records if r.source == "failed"][0]
        assert [a.outcome for a in failed.attempts] == ["timeout", "timeout"]
        assert "JobTimeout" in failed.error

    def test_pool_timeout_kills_the_worker_not_the_pool(self, fresh_caches):
        policy = RetryPolicy(timeout_seconds=3.0, max_retries=1, **FAST)
        specs = [chaos_spec("sleepy", ChaosPlan(behavior="sleep", seconds=30)),
                 count_spec(BENCH)]
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=2, policy=policy).run(specs)
        stats = excinfo.value.stats
        assert stats.timeouts == 2
        assert stats.pool_rebuilds == 0  # SIGALRM, not a crash
        assert stats.simulated == 1
        sources = {r.key.model: r.source for r in stats.records}
        assert sources == {"chaos": "failed", "count": "simulated"}


class TestRetries:
    @pytest.mark.parametrize("n_jobs", [1, 2], ids=["inline", "pool"])
    def test_flaky_job_retries_then_succeeds(self, fresh_caches, tmp_path,
                                             n_jobs):
        plan = ChaosPlan(behavior="flaky", fail_times=2,
                         state_file=str(tmp_path / "state"))
        policy = RetryPolicy(max_retries=2, **FAST)
        stats = ExperimentRunner(jobs=n_jobs, policy=policy).run(
            [chaos_spec("flaky", plan), count_spec(BENCH)])
        assert stats.simulated == 2
        assert stats.failed == 0
        assert stats.retried == 2
        record = [r for r in stats.records if r.key.model == "chaos"][0]
        assert record.source == "simulated"
        assert [a.outcome for a in record.attempts] == ["error", "error", "ok"]

    def test_retries_exhausted_fails_with_attempt_trail(self, fresh_caches,
                                                        tmp_path):
        plan = ChaosPlan(behavior="flaky", fail_times=5,
                         state_file=str(tmp_path / "state"))
        policy = RetryPolicy(max_retries=2, **FAST)
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=1, policy=policy).run(
                [chaos_spec("flaky", plan)])
        record = excinfo.value.stats.records[0]
        assert record.source == "failed"
        assert [a.outcome for a in record.attempts] == 3 * ["error"]
        assert all("ChaosError" in a.error for a in record.attempts)

    def test_zero_retries_fails_immediately(self, fresh_caches, tmp_path):
        plan = ChaosPlan(behavior="flaky", fail_times=1,
                         state_file=str(tmp_path / "state"))
        policy = RetryPolicy(max_retries=0)
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=1, policy=policy).run(
                [chaos_spec("flaky", plan)])
        assert excinfo.value.stats.retried == 0
        assert len(excinfo.value.stats.records[0].attempts) == 1


class TestPoolCrashRecovery:
    def test_worker_crash_rebuilds_pool_and_quarantines_poison(
            self, fresh_caches):
        """An ``os._exit`` worker sinks the pool twice; the job is
        quarantined as poison, the pool rebuilt, and every innocent job
        still completes."""
        specs = [
            chaos_spec("boom", ChaosPlan(behavior="exit", seconds=0.2)),
            count_spec(BENCH),
            count_spec("li"),
        ]
        policy = RetryPolicy(poison_threshold=2, **FAST)
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=2, policy=policy).run(specs)
        err = excinfo.value
        stats = err.stats

        assert stats.pool_rebuilds == 2  # one per consecutive crash
        assert stats.poisoned == 1
        assert stats.simulated == 2  # innocents requeued and completed
        assert [k.model for k, _ in err.failures] == ["chaos"]
        assert "poison" in str(err.failures[0][1])
        poisoned = [r for r in stats.records if r.source == "failed"][0]
        assert poisoned.key.model == "chaos"
        assert [a.outcome for a in poisoned.attempts] == ["crash", "crash"]

        # Innocent results were absorbed and are readable.
        jobs.reset_simulation_count()
        assert models.run_instruction_count(BENCH) > 0
        assert models.run_instruction_count("li") > 0
        assert jobs.simulation_count() == 0

    def test_abort_tags_pending_victims_not_failures(self, fresh_caches):
        """With the rebuild budget exhausted, crash suspects are
        ``"failed"`` (candidate culprits) while never-submitted jobs are
        ``"aborted"`` — distinct provenance, correct blame."""
        specs = [
            chaos_spec("boom", ChaosPlan(behavior="exit")),
            count_spec("compress"),
            count_spec("go"),
            count_spec("perl"),
            count_spec("m88ksim"),
        ]
        policy = RetryPolicy(poison_threshold=99, max_pool_rebuilds=0, **FAST)
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=2, policy=policy).run(specs)
        err = excinfo.value
        stats = err.stats

        assert stats.aborted > 0
        assert stats.aborted == len(err.aborted)
        assert "aborted" in str(err)
        by_source = {}
        for record in stats.records:
            by_source.setdefault(record.source, []).append(record)
        # The crashing chaos job is always a failed suspect, never an
        # aborted victim; aborted records carry no blame.
        assert "chaos" in {r.key.model for r in by_source["failed"]}
        assert all(r.key.model == "count" for r in by_source["aborted"])
        for record in by_source["aborted"]:
            assert "aborted" in record.error
            assert record.key in err.aborted

    def test_payload_carries_resilience_counters(self, fresh_caches,
                                                 tmp_path):
        plan = ChaosPlan(behavior="flaky", fail_times=1,
                         state_file=str(tmp_path / "state"))
        policy = RetryPolicy(max_retries=1, **FAST)
        stats = ExperimentRunner(jobs=1, policy=policy).run(
            [chaos_spec("flaky", plan)])
        payload = stats_payload(stats, scale=1)
        assert payload["retried"] == 1
        assert payload["pool_rebuilds"] == 0
        assert payload["poisoned"] == 0
        assert payload["aborted"] == 0
        [row] = [r for r in payload["per_job"] if r["job"].startswith("chaos")]
        assert [a["outcome"] for a in row["attempts"]] == ["error", "ok"]


class TestCheckpointResume:
    def test_interrupted_pass_resumes_from_disk(self, fresh_caches):
        """Jobs absorbed before an interrupt are never re-simulated:
        the disk cache is the checkpoint."""
        interrupting = chaos_spec("ctrl-c", ChaosPlan(behavior="interrupt"))
        # Weight ordering runs the real jobs before the weight-1 chaos
        # job, so the interrupt fires after they were absorbed.
        specs = [count_spec(BENCH), count_spec("li"), interrupting]
        with pytest.raises(KeyboardInterrupt):
            ExperimentRunner(jobs=1).run(specs)

        # Resume in a cold process (memory cache dropped): completed
        # jobs are disk hits, only the unfinished job simulates.
        models.clear_cache()
        jobs.reset_simulation_count()
        resumed = [count_spec(BENCH), count_spec("li"),
                   chaos_spec("ok-now", ChaosPlan(behavior="ok"))]
        stats = ExperimentRunner(jobs=1).run(resumed)
        assert stats.disk_hits == 2
        assert stats.simulated == 1
        assert jobs.simulation_count() == 1

    def test_warm_rerun_after_failure_is_pure_hits(self, fresh_caches,
                                                   tmp_path):
        plan = ChaosPlan(behavior="flaky", fail_times=99,
                         state_file=str(tmp_path / "state"))
        specs = [count_spec(BENCH), chaos_spec("bad", plan)]
        policy = RetryPolicy(max_retries=0)
        with pytest.raises(RunnerError):
            ExperimentRunner(jobs=1, policy=policy).run(specs)
        models.clear_cache()
        jobs.reset_simulation_count()
        stats = ExperimentRunner(jobs=1, policy=policy).run(
            [count_spec(BENCH)])
        assert stats.disk_hits == 1
        assert jobs.simulation_count() == 0


class TestAttemptRecord:
    def test_json_round_trip_shape(self):
        record = AttemptRecord(0, "timeout", 1.23456, error="JobTimeout: x")
        assert record.to_json() == {
            "index": 0, "outcome": "timeout", "seconds": 1.2346,
            "error": "JobTimeout: x",
        }
        ok = AttemptRecord(1, "ok", 0.5)
        assert "error" not in ok.to_json()
