"""The parallel experiment runner: dedup, parallel==sequential identity,
warm-cache runs performing zero simulations, and failure handling (one
bad job must not lose the pass)."""

import pytest

from repro.eval import jobs, models
from repro.eval.jobs import (
    JobKey,
    JobSpec,
    baseline_spec,
    count_spec,
    enumerate_artifact_jobs,
    slipstream_spec,
)
from repro.eval.profiling import stats_payload
from repro.eval.runner import ExperimentRunner, RunnerError, run_artifact_jobs
from repro.obs.session import ENV_TRACE_DIR

BENCH = "jpeg"  # the cheapest workload in the suite


@pytest.fixture
def fresh_caches(tmp_path):
    """Point the disk cache at a temp dir; leave no global state behind."""
    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    jobs.reset_simulation_count()
    models.configure_disk_cache(enabled=True, cache_dir=str(tmp_path / "cache"))
    yield tmp_path / "cache"
    models.clear_cache()
    models._DISK, models._DISK_ENABLED = saved


def small_specs():
    return [count_spec(BENCH), baseline_spec(BENCH), slipstream_spec(BENCH)]


class TestDedup:
    def test_duplicate_specs_run_once(self, fresh_caches):
        specs = small_specs() * 3
        stats = ExperimentRunner(jobs=1).run(specs)
        assert stats.requested == 9
        assert stats.deduplicated == 3
        assert stats.simulated == 3

    def test_artifact_enumeration_is_deduplicated(self):
        from repro.core.slipstream import SlipstreamConfig

        specs = enumerate_artifact_jobs(1)
        keys = [s.key for s in specs]
        assert len(keys) == len(set(keys))
        # Figure 6/8/Table 3 share one default CMP job per benchmark.
        default_fp = SlipstreamConfig().fingerprint()
        default_cmp = [k for k in keys
                       if k.model == "cmp"
                       and k.config_fingerprint == default_fp
                       and k.benchmark == "li"]
        assert len(default_cmp) == 1

    def test_rejects_bad_job_count(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)


class TestParallelIdentity:
    def test_parallel_matches_sequential(self, fresh_caches, tmp_path):
        specs = small_specs()

        stats_seq = ExperimentRunner(jobs=1).run(specs)
        assert stats_seq.simulated == len(specs)
        seq_count = models.run_instruction_count(BENCH)
        seq_base = models.run_baseline(BENCH)
        seq_slip = models.run_slipstream_model(BENCH)

        # Fresh memory + a separate disk dir: force the pool to simulate.
        models.clear_cache()
        models.configure_disk_cache(enabled=True,
                                    cache_dir=str(tmp_path / "cache-par"))
        stats_par = ExperimentRunner(jobs=4).run(specs)
        assert stats_par.simulated == len(specs)
        par_count = models.run_instruction_count(BENCH)
        par_base = models.run_baseline(BENCH)
        par_slip = models.run_slipstream_model(BENCH)

        assert par_count == seq_count
        assert par_base.ipc == seq_base.ipc
        assert par_base.cycles == seq_base.cycles
        assert par_base.branch_mispredictions == seq_base.branch_mispredictions
        assert par_slip.ipc == seq_slip.ipc
        assert par_slip.removal_fraction == seq_slip.removal_fraction
        assert par_slip.removed_by_category == seq_slip.removed_by_category
        assert (par_slip.ir_mispredictions_per_1000
                == seq_slip.ir_mispredictions_per_1000)

    def test_pool_workers_do_not_inflate_parent_counter(self, fresh_caches):
        jobs.reset_simulation_count()
        ExperimentRunner(jobs=2).run(small_specs())
        # Simulations happened in worker processes, not this one.
        assert jobs.simulation_count() == 0


def bogus_spec():
    """A spec whose model no simulation path knows: the worker raises."""
    return JobSpec(JobKey("bogus", BENCH))


class TestFailureHandling:
    @pytest.mark.parametrize("n_jobs", [1, 2], ids=["inline", "pool"])
    def test_failed_job_does_not_lose_the_pass(self, fresh_caches, n_jobs):
        specs = [*small_specs(), bogus_spec()]
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=n_jobs).run(specs)
        err = excinfo.value

        # The error aggregates the casualties and names them.
        assert len(err.failures) == 1
        assert err.failures[0][0] == bogus_spec().key
        assert f"bogus/{BENCH}@1" in str(err)
        assert "ValueError" in str(err)

        # Stats are fully populated despite the raise.
        stats = err.stats
        assert stats.failed == 1
        assert stats.simulated == len(small_specs())
        assert stats.wall_seconds > 0

        # The casualty has a "failed" record carrying the error string.
        failed = [r for r in stats.records if r.source == "failed"]
        assert len(failed) == 1
        assert failed[0].key == bogus_spec().key
        assert "ValueError" in failed[0].error

        # Surviving results were absorbed: readable without resimulating.
        jobs.reset_simulation_count()
        assert models.run_baseline(BENCH).retired > 0
        assert jobs.simulation_count() == 0

    def test_failed_payload_shape(self, fresh_caches):
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=1).run([count_spec(BENCH), bogus_spec()])
        payload = stats_payload(excinfo.value.stats, scale=1)
        assert payload["failed"] == 1
        failed = [r for r in payload["per_job"] if r["source"] == "failed"]
        assert len(failed) == 1
        assert "ValueError" in failed[0]["error"]

    def test_many_failures_are_summarized(self, fresh_caches):
        specs = [JobSpec(JobKey("bogus", b))
                 for b in ("a", "b", "c", "d", "e")]
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner(jobs=1).run(specs)
        assert len(excinfo.value.failures) == 5
        assert "(+2 more)" in str(excinfo.value)


class TestTracingIdentity:
    def test_parallel_matches_sequential_with_tracing(
            self, fresh_caches, tmp_path, monkeypatch):
        """The ISSUE's bit-identity check: tracing enabled (workers
        inherit the env), parallel results == sequential results."""
        monkeypatch.setenv(ENV_TRACE_DIR, str(tmp_path / "tr-seq"))
        specs = small_specs()
        stats_seq = ExperimentRunner(jobs=1).run(specs)
        assert stats_seq.simulated == len(specs)
        seq_base = models.run_baseline(BENCH)
        seq_slip = models.run_slipstream_model(BENCH)

        models.clear_cache()
        models.configure_disk_cache(enabled=True,
                                    cache_dir=str(tmp_path / "cache-par"))
        monkeypatch.setenv(ENV_TRACE_DIR, str(tmp_path / "tr-par"))
        stats_par = ExperimentRunner(jobs=3).run(specs)
        assert stats_par.simulated == len(specs)

        # Bit-identical architectural results.
        assert models.run_baseline(BENCH) == seq_base
        assert models.run_slipstream_model(BENCH) == seq_slip

        # Both passes carried reports; their counters agree too.
        reports_seq = {r.job: r for r in stats_seq.reports}
        reports_par = {r.job: r for r in stats_par.reports}
        assert set(reports_seq) == set(reports_par) != set()
        for label, report in reports_seq.items():
            assert report.counters == reports_par[label].counters

        # Pool workers wrote byte-identical traces to the inline path
        # (count jobs are uninstrumented and carry no trace).
        from repro.obs import validate_trace
        traced = {label: r for label, r in reports_seq.items()
                  if r.trace_path is not None}
        assert traced
        for label, report in traced.items():
            par_trace = reports_par[label].trace_path
            assert validate_trace(report.trace_path) == \
                validate_trace(par_trace)
            with open(report.trace_path, "rb") as a, \
                    open(par_trace, "rb") as b:
                assert a.read() == b.read()


class TestWarmCache:
    def test_warm_memory_cache_performs_zero_simulations(self, fresh_caches):
        specs = small_specs()
        ExperimentRunner(jobs=1).run(specs)
        jobs.reset_simulation_count()

        stats = ExperimentRunner(jobs=4).run(specs)
        assert stats.simulated == 0
        assert stats.memory_hits == len(specs)
        assert jobs.simulation_count() == 0

    def test_warm_disk_cache_performs_zero_simulations(self, fresh_caches):
        specs = small_specs()
        ExperimentRunner(jobs=1).run(specs)

        models.clear_cache()  # drop memory; disk survives
        jobs.reset_simulation_count()
        stats = ExperimentRunner(jobs=1).run(specs)
        assert stats.simulated == 0
        assert stats.disk_hits == len(specs)
        assert jobs.simulation_count() == 0

        # Disk-loaded results are the same values the report reads.
        warm = models.run_baseline(BENCH)
        assert warm.retired > 0
        assert jobs.simulation_count() == 0

    def test_disk_cache_disabled_resimulates(self, fresh_caches):
        specs = small_specs()
        run_artifact_jobs(specs, jobs=1, use_disk_cache=False)
        models.clear_cache()
        jobs.reset_simulation_count()
        stats = run_artifact_jobs(specs, jobs=1, use_disk_cache=False)
        assert stats.simulated == len(specs)
        assert jobs.simulation_count() == len(specs)


class TestStats:
    def test_bench_payload_shape(self, fresh_caches):
        stats = ExperimentRunner(jobs=1).run(small_specs())
        payload = stats_payload(stats, scale=1, report_seconds=0.5)
        assert payload["unique_jobs"] == 3
        assert payload["simulated"] == 3
        assert payload["warm"] is False
        assert payload["wall_clock_seconds"] > 0
        assert payload["report_render_seconds"] == 0.5
        labels = {r["job"] for r in payload["per_job"]}
        assert f"count/{BENCH}@1" in labels
        assert any(label.startswith(f"cmp/{BENCH}@1[BR,WW,SV]#")
                   for label in labels)
        for record in payload["per_job"]:
            assert record["source"] == "simulated"

    def test_warm_payload_flags_warm(self, fresh_caches):
        ExperimentRunner(jobs=1).run(small_specs())
        stats = ExperimentRunner(jobs=1).run(small_specs())
        payload = stats_payload(stats, scale=1)
        assert payload["warm"] is True
        assert payload["simulated"] == 0


class TestSchedulingOverhaul:
    def test_parallelism_context_and_queue_seconds(self, fresh_caches):
        stats = ExperimentRunner(jobs=2).run(small_specs())
        assert stats.cpu_count >= 1
        assert stats.workers == 2  # min(jobs=2, 3 cold jobs)
        simulated = [r for r in stats.records if r.source == "simulated"]
        assert simulated
        for record in simulated:
            assert record.queue_seconds >= 0.0
        payload = stats_payload(stats, scale=1)
        assert payload["cpu_count"] == stats.cpu_count
        assert payload["workers"] == 2
        for row in payload["per_job"]:
            assert row["queue_seconds"] >= 0.0

    def test_speedup_is_null_on_warm_pass(self, fresh_caches):
        specs = small_specs()
        cold = ExperimentRunner(jobs=1).run(specs)
        assert cold.speedup_vs_sequential is not None
        assert cold.speedup_vs_sequential > 0.0
        warm = ExperimentRunner(jobs=1).run(specs)
        assert warm.speedup_vs_sequential is None
        payload = stats_payload(warm, scale=1)
        assert payload["speedup_vs_sequential"] is None

    def test_duration_oracle_persists_measured_costs(self, fresh_caches):
        from repro.eval.oracle import ORACLE_FILENAME, DurationOracle

        specs = small_specs()
        ExperimentRunner(jobs=1).run(specs)
        oracle_path = fresh_caches / ORACLE_FILENAME
        assert oracle_path.is_file()
        oracle = DurationOracle(oracle_path)
        assert len(oracle) == len(specs)
        # Learned durations order the CMP co-simulation (the sweep's
        # heavyweight) ahead of the functional count job.
        assert (oracle.estimate(slipstream_spec(BENCH).key)
                > oracle.estimate(count_spec(BENCH).key))

    def test_oracle_degrades_on_corrupt_file(self, tmp_path):
        from repro.eval.oracle import DurationOracle

        path = tmp_path / "durations.json"
        path.write_text("{not json", encoding="utf-8")
        oracle = DurationOracle(path)
        assert len(oracle) == 0
        key = count_spec(BENCH).key
        # Empty oracle: static model weight times the unit scale.
        assert oracle.estimate(key) == 1.0
        oracle.observe(key, 2.0)
        oracle.save()
        assert DurationOracle(path).estimate(key) == 2.0

    def test_oracle_family_fallback_survives_refingerprint(self, tmp_path):
        from dataclasses import replace

        from repro.eval.oracle import DurationOracle

        oracle = DurationOracle(tmp_path / "durations.json")
        key = replace(slipstream_spec(BENCH).key, config_fingerprint="aaaa")
        oracle.observe(key, 5.0)
        # A config tweak re-fingerprints the job: the exact digest is
        # unknown but the family estimate carries the learned cost.
        tweaked = replace(key, config_fingerprint="bbbb")
        assert oracle.estimate(tweaked) == 5.0
        # A different benchmark is a different family: static weights.
        other = replace(tweaked, benchmark="other-bench")
        assert oracle.estimate(other) != 5.0
        oracle.save()
        assert DurationOracle(oracle.path).estimate(tweaked) == 5.0
