"""The eval daemon: HTTP API, streaming, in-flight dedup, and identity
with inline execution.

One module-scoped daemon (thread backend — the 1-CPU degradation mode)
serves every test; assertions use counter deltas, not absolutes.  The
codec tests run without the server.
"""

import json
import threading

import pytest

from repro.core.slipstream import SlipstreamConfig
from repro.eval import jobs, models
from repro.eval.jobs import (
    baseline_spec,
    count_spec,
    fault_spec,
    injection_spec,
    mode_reference_spec,
    slipstream_spec,
)
from repro.eval.models import run_cached
from repro.eval.serve import (
    ServeClient,
    ServeError,
    SpecError,
    result_payload,
    spec_from_json,
    start_server_thread,
)
from repro.fault.injector import FaultSite


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    jobs.reset_simulation_count()
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    models.configure_disk_cache(enabled=True, cache_dir=str(cache_dir))
    handle = start_server_thread(jobs=2, backend="thread")
    yield handle
    handle.stop()
    models.clear_cache()
    models._DISK, models._DISK_ENABLED = saved


@pytest.fixture
def client(server):
    return ServeClient(port=server.port)


# ----------------------------------------------------------------------
# The JSON job codec (no server needed).
# ----------------------------------------------------------------------


class TestSpecCodec:
    def test_simple_models_roundtrip(self):
        assert spec_from_json(
            {"model": "count", "benchmark": "jpeg"}
        ).key == count_spec("jpeg").key
        assert spec_from_json(
            {"model": "ss64", "benchmark": "go", "scale": 2}
        ).key == baseline_spec("go", 2).key

    def test_cmp_with_triggers(self):
        decoded = spec_from_json({
            "model": "cmp", "benchmark": "jpeg",
            "removal_triggers": ["BR"],
        })
        assert decoded.key == slipstream_spec("jpeg", 1, ("BR",)).key

    def test_cmp_with_config_fields(self):
        decoded = spec_from_json({
            "model": "cmp", "benchmark": "jpeg",
            "config": {"confidence_threshold": 4, "static_hints": True},
        })
        expected = slipstream_spec("jpeg", config=SlipstreamConfig(
            confidence_threshold=4, static_hints=True
        ))
        assert decoded.key == expected.key

    def test_fault_with_sites(self):
        decoded = spec_from_json({
            "model": "fault", "benchmark": "jpeg",
            "points": 3, "sites": ["A_RESULT"],
        })
        expected = fault_spec("jpeg", 1, 3, (FaultSite.A_RESULT,))
        assert decoded.key == expected.key

    def test_finj_defaults_to_slipstream(self):
        decoded = spec_from_json({
            "model": "finj", "benchmark": "jpeg",
            "site": "R_ARCH", "target_seq": 4000,
        })
        expected = injection_spec("jpeg", FaultSite.R_ARCH, 4000)
        assert decoded.key == expected.key
        assert decoded.mode == "slipstream"

    def test_finj_with_every_field(self):
        decoded = spec_from_json({
            "model": "finj", "benchmark": "li", "scale": 2,
            "site": "R_TRANSIENT", "target_seq": 123, "bit": 30,
            "ecc": True, "mode": "tmr",
        })
        expected = injection_spec("li", FaultSite.R_TRANSIENT, 123,
                                  bit=30, scale=2, ecc=True, mode="tmr")
        assert decoded.key == expected.key
        assert decoded.mode == "tmr"

    def test_nref_roundtrip(self):
        decoded = spec_from_json({
            "model": "nref", "benchmark": "jpeg", "mode": "replay",
        })
        assert decoded.key == mode_reference_spec("jpeg", "replay").key

    def test_decorrelated_config_field(self):
        decoded = spec_from_json({
            "model": "cmp", "benchmark": "jpeg",
            "config": {"decorrelated": True},
        })
        expected = slipstream_spec("jpeg", config=SlipstreamConfig(
            decorrelated=True
        ))
        assert decoded.key == expected.key

    @pytest.mark.parametrize("payload", [
        "not an object",
        {"benchmark": "jpeg"},
        {"model": "nope", "benchmark": "jpeg"},
        {"model": "count", "benchmark": "nope"},
        {"model": "count", "benchmark": "jpeg", "scale": 0},
        {"model": "count", "benchmark": "jpeg", "scale": "big"},
        {"model": "count", "benchmark": "jpeg", "scale": True},
        {"model": "count", "benchmark": "jpeg", "points": 3},
        {"model": "cmp", "benchmark": "jpeg", "removal_triggers": ["XX"]},
        {"model": "cmp", "benchmark": "jpeg", "config": {"core": {}}},
        {"model": "cmp", "benchmark": "jpeg",
         "config": {"confidence_threshold": "low"}},
        {"model": "cmp", "benchmark": "jpeg",
         "config": {"removal_mechanism": "magic"}},
        {"model": "fault", "benchmark": "jpeg", "sites": ["NOPE"]},
        {"model": "fault", "benchmark": "jpeg", "points": 0},
        {"model": "finj", "benchmark": "jpeg", "site": "R_ARCH"},
        {"model": "finj", "benchmark": "jpeg", "target_seq": 1},
        {"model": "finj", "benchmark": "jpeg", "site": "r_arch",
         "target_seq": 1},
        {"model": "finj", "benchmark": "jpeg", "site": "R_ARCH",
         "target_seq": 1, "bit": 32},
        {"model": "finj", "benchmark": "jpeg", "site": "R_ARCH",
         "target_seq": 1, "ecc": "yes"},
        {"model": "finj", "benchmark": "jpeg", "site": "R_ARCH",
         "target_seq": 1, "mode": "reliable"},
        {"model": "nref", "benchmark": "jpeg"},
        {"model": "nref", "benchmark": "jpeg", "mode": "slipstream"},
        {"model": "nref", "benchmark": "jpeg", "mode": "tmr", "bit": 3},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(SpecError):
            spec_from_json(payload)


# ----------------------------------------------------------------------
# The HTTP API.
# ----------------------------------------------------------------------


class TestServeAPI:
    def test_health(self, client, server):
        health = client.health()
        assert health["ok"] is True
        assert health["backend"] == "thread"
        assert health["workers"] == 2
        assert set(health["stats"]) >= {"simulated", "deduped", "submitted"}

    def test_batch_streams_every_job_with_digest(self, client):
        batch = [
            {"model": "count", "benchmark": "jpeg"},
            {"model": "count", "benchmark": "go"},
        ]
        lines = client.submit_all(batch)
        assert sorted(line["index"] for line in lines) == [0, 1]
        for line in lines:
            assert line["ok"] is True
            assert line["source"] in ("fresh", "memory", "disk", "inflight")
            assert len(line["digest"]) == 64
            json.dumps(line["result"])  # canonical body is pure JSON

    def test_results_identical_to_inline(self, client):
        spec = count_spec("jpeg")
        served = client.submit_all([{"model": "count", "benchmark": "jpeg"}])
        inline = result_payload(0, spec.key, "inline", run_cached(spec))
        assert served[0]["digest"] == inline["digest"]
        assert served[0]["result"] == inline["result"]

    def test_intra_batch_dedup_simulates_once(self, client):
        before = jobs.simulation_count()
        batch = [{"model": "count", "benchmark": "compress"}] * 3
        lines = client.submit_all(batch)
        assert len(lines) == 3
        assert {line["digest"] for line in lines} == {lines[0]["digest"]}
        assert jobs.simulation_count() - before <= 1

    def test_warm_cache_requests_do_zero_simulation(self, client):
        batch = [{"model": "count", "benchmark": "jpeg"},
                 {"model": "count", "benchmark": "go"}]
        client.submit_all(batch)  # ensure warm
        before = jobs.simulation_count()
        lines = client.submit_all(batch)
        assert jobs.simulation_count() == before
        assert all(line["source"] in ("memory", "disk", "inflight")
                   for line in lines)

    def test_concurrent_clients_share_inflight_work(self, client, server):
        # 4 clients race the same cold grid; the daemon must simulate
        # each unique job at most once (dedup or cache, either path).
        batch = [{"model": "count", "benchmark": "jpeg", "scale": 2},
                 {"model": "count", "benchmark": "go", "scale": 2}]
        before = jobs.simulation_count()
        results = [None] * 4
        errors = []

        def tenant(slot):
            try:
                results[slot] = ServeClient(port=server.port).submit_all(batch)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=tenant, args=(slot,))
                   for slot in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert jobs.simulation_count() - before <= len(batch)
        digests = {
            line["job"]: line["digest"] for line in results[0]
        }
        for outcome in results:
            assert len(outcome) == len(batch)
            for line in outcome:
                assert line["ok"] is True
                assert line["digest"] == digests[line["job"]]

    def test_malformed_submit_is_400(self, client):
        for jobs_payload in ([{"model": "nope", "benchmark": "jpeg"}],
                             [{"model": "count", "benchmark": "jpeg",
                               "extra": 1}],
                             "not a list"):
            with pytest.raises(ServeError) as err:
                client.submit_all(jobs_payload)  # type: ignore[arg-type]
            assert err.value.status == 400

    def test_nstream_campaign_jobs_submit_over_http(self, client):
        """Satellite: N-stream campaign jobs are first-class daemon
        submissions; a malformed mode is a 400, never a daemon
        exception."""
        lines = client.submit_all([
            {"model": "finj", "benchmark": "jpeg", "site": "R_ARCH",
             "target_seq": 4000, "mode": "tmr"},
            {"model": "nref", "benchmark": "jpeg", "mode": "replay"},
        ])
        assert len(lines) == 2
        assert all(line["ok"] for line in lines)
        with pytest.raises(ServeError) as err:
            client.submit_all([
                {"model": "finj", "benchmark": "jpeg", "site": "R_ARCH",
                 "target_seq": 1, "mode": "quadruple"},
            ])
        assert err.value.status == 400
        assert "mode" in err.value.detail
        assert client.health()["ok"]  # daemon survived

    def test_non_json_body_is_400(self, client, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("POST", "/v1/submit", body=b"{not json")
        response = conn.getresponse()
        assert response.status == 400
        conn.close()

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v1/submit")
        assert err.value.status == 405
        with pytest.raises(ServeError) as err:
            client._request("POST", "/v1/health", payload={})
        assert err.value.status == 405

    def test_metrics_endpoint_snapshots_counters(self, client):
        payload = client.metrics()
        assert payload["ok"] is True
        metrics = payload["metrics"]
        assert metrics["serve.requests"] >= 1
        assert set(metrics) >= {"serve.connections", "serve.batches",
                                "serve.jobs_submitted", "serve.jobs_served",
                                "serve.simulated"}
        before = metrics["serve.jobs_served"]
        client.submit_all([{"model": "count", "benchmark": "jpeg"}])
        after = client.metrics()["metrics"]["serve.jobs_served"]
        assert after == before + 1

    def test_keepalive_reuses_one_connection(self, server):
        """Health, metrics, and a fully-drained streamed submit all
        ride one TCP connection: the daemon's connection counter moves
        by exactly one for the whole client session."""
        client = ServeClient(port=server.port)
        before = client.metrics()["metrics"]["serve.connections"]
        client.health()
        client.submit_all([{"model": "count", "benchmark": "jpeg"},
                           {"model": "count", "benchmark": "go"}])
        after = client.metrics()["metrics"]["serve.connections"]
        client.close()
        assert after == before

    def test_pickle_flag_roundtrips_result_objects(self, client):
        import base64
        import pickle

        spec = count_spec("jpeg")
        line = client.submit_all(
            [{"model": "count", "benchmark": "jpeg"}], include_pickle=True
        )[0]
        restored = pickle.loads(base64.b64decode(line["pickle"]))
        inline = result_payload(0, spec.key, "inline", restored)
        assert inline["digest"] == line["digest"]
        # cpu/wall accounting always rides the line (0.0 on cache hits).
        assert "cpu_seconds" in line and "wall_seconds" in line


class TestServeLifecycle:
    def test_client_reconnects_after_idle_timeout(self, tmp_path):
        """The daemon reclaims a keep-alive socket idle past the
        timeout; the client's next request transparently reconnects
        (every daemon API request is idempotent, so replay is safe)."""
        saved = (models._DISK, models._DISK_ENABLED)
        models._DISK, models._DISK_ENABLED = None, False
        try:
            handle = start_server_thread(jobs=1, backend="inline",
                                         use_disk_cache=False,
                                         keepalive_idle_seconds=0.2)
            try:
                client = ServeClient(port=handle.port)
                assert client.health()["ok"]
                import time

                time.sleep(0.6)  # daemon drops the idle connection
                assert client.health()["ok"]  # replayed on a fresh socket
                connections = client.metrics()["metrics"]["serve.connections"]
                client.close()
                assert connections == 2
            finally:
                handle.stop()
        finally:
            models.clear_cache()
            models._DISK, models._DISK_ENABLED = saved

    def test_shutdown_endpoint_stops_daemon(self, tmp_path):
        saved = (models._DISK, models._DISK_ENABLED)
        models.configure_disk_cache(enabled=True,
                                    cache_dir=str(tmp_path / "cache"))
        try:
            handle = start_server_thread(jobs=1, backend="inline")
            client = ServeClient(port=handle.port)
            assert client.health()["backend"] == "inline"
            assert client.shutdown() == {"ok": True, "stopping": True}
            handle.thread.join(timeout=30)
            assert not handle.thread.is_alive()
        finally:
            models.clear_cache()
            models._DISK, models._DISK_ENABLED = saved
