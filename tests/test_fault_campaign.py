"""Scaled fault campaigns and the ECC model: seeded-sampling
determinism (same seed ⇒ byte-identical BENCH_fault.json, parallel
bit-identical to inline), ECC reclassification of R-stream
architectural strikes, and the coverage accounting fixes (no vacuous
1.0, NOT_FIRED excluded from denominators)."""

import json

import pytest

from repro.core.modes import CAMPAIGN_MODES
from repro.eval import jobs, models
from repro.fault.campaign import (
    CampaignConfig,
    ScaledCampaignResult,
    format_coverage_table,
    format_frontier_table,
    mode_sites,
    run_scaled_campaign,
    sample_points,
    write_fault_bench,
)
from repro import assemble
from repro.fault.coverage import (
    HANDLED_OUTCOMES,
    HARMFUL_OUTCOMES,
    CampaignResult,
    FaultOutcome,
    InjectionResult,
    hang_budget,
    inject_one,
    run_campaign,
)
from repro.fault.ecc import PROTECTED_SITES, ECCModel
from repro.fault.injector import FaultSite, TransientFault
from repro.workloads.suite import get_benchmark

BENCH = "jpeg"  # cheapest workload; zero removal, so all R strikes compared


@pytest.fixture
def fresh_caches(tmp_path):
    saved = (models._DISK, models._DISK_ENABLED)
    models.clear_cache()
    jobs.reset_simulation_count()
    models.configure_disk_cache(enabled=True, cache_dir=str(tmp_path / "cache"))
    yield tmp_path / "cache"
    models.clear_cache()
    models._DISK, models._DISK_ENABLED = saved


#: A small, site-diverse campaign on the cheapest workload.  Seed 7 is
#: chosen (and pinned by the byte-identity tests) because it produces
#: harmful R_ARCH strikes on jpeg: detected-unrecoverable without ECC.
SMALL = dict(benchmarks=(BENCH,), points_per_benchmark=6, seed=7)


class TestECCModel:
    def test_protects_only_r_arch_by_default(self):
        ecc = ECCModel()
        assert PROTECTED_SITES == frozenset({FaultSite.R_ARCH})
        assert ecc.protects(FaultSite.R_ARCH)
        assert not ecc.protects(FaultSite.R_TRANSIENT)
        assert not ecc.protects(FaultSite.A_RESULT)

    def test_counts_corrections(self):
        ecc = ECCModel()
        assert ecc.corrections == 0
        ecc.correct()
        ecc.correct()
        assert ecc.corrections == 2

    def test_inject_one_with_ecc_corrects_r_arch(self):
        program = get_benchmark(BENCH).program(1)
        fault = TransientFault(site=FaultSite.R_ARCH, target_seq=4000, bit=7)
        plain = inject_one(program, fault)
        protected = inject_one(program, fault, ecc=True)
        assert plain.outcome is not FaultOutcome.ECC_CORRECTED
        assert not plain.ecc_corrected
        assert protected.outcome is FaultOutcome.ECC_CORRECTED
        assert protected.ecc_corrected

    def test_ecc_does_not_mask_transient_faults(self):
        """ECC encodes whatever value is written — a corrupted *computed*
        value is stored with a valid code.  Scenario #2 stays open."""
        program = get_benchmark(BENCH).program(1)
        fault = TransientFault(site=FaultSite.R_TRANSIENT, target_seq=4000)
        plain = inject_one(program, fault)
        protected = inject_one(program, fault, ecc=True)
        assert protected.outcome is plain.outcome
        assert not protected.ecc_corrected


class TestSampling:
    LENGTHS = {BENCH: {"A": 8000, "R": 10000}, "li": {"A": 5000, "R": 9000}}

    def test_same_seed_same_points(self):
        config = CampaignConfig(benchmarks=(BENCH, "li"),
                                points_per_benchmark=9, seed=42)
        assert sample_points(config, self.LENGTHS) == \
            sample_points(config, self.LENGTHS)

    def test_different_seed_different_points(self):
        a = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=9, seed=1)
        b = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=9, seed=2)
        assert sample_points(a, self.LENGTHS) != sample_points(b, self.LENGTHS)

    def test_per_benchmark_streams_are_independent(self):
        """Adding a benchmark must not perturb another's points."""
        solo = CampaignConfig(benchmarks=("li",), points_per_benchmark=6,
                              seed=42)
        both = CampaignConfig(benchmarks=(BENCH, "li"),
                              points_per_benchmark=6, seed=42)
        li_solo = [p for p in sample_points(solo, self.LENGTHS)]
        li_both = [p for p in sample_points(both, self.LENGTHS)
                   if p.benchmark == "li"]
        assert li_solo == li_both

    def test_sites_rotate_round_robin(self):
        config = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=6,
                                seed=0)
        points = sample_points(config, self.LENGTHS)
        sites = [p.fault.site for p in points]
        assert sites == 2 * list(config.sites)

    def test_points_respect_warmup_and_stream_bounds(self):
        config = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=30,
                                seed=3, warmup_fraction=0.25)
        for point in sample_points(config, self.LENGTHS):
            n = self.LENGTHS[BENCH][
                "A" if point.fault.site is FaultSite.A_RESULT else "R"]
            assert int(0.25 * n) <= point.fault.target_seq < n
            assert 0 <= point.fault.bit < 32

    @pytest.mark.parametrize("kwargs", [
        {"benchmarks": ()},
        {"sites": ()},
        {"points_per_benchmark": 0},
        {"warmup_fraction": 1.0},
        {"warmup_fraction": -0.1},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            CampaignConfig(**kwargs)


def _synthetic(outcome, site=FaultSite.R_TRANSIENT, compared=True):
    return InjectionResult(
        fault=TransientFault(site=site, target_seq=1),
        outcome=outcome, struck_compared=compared, detections=0,
    )


class TestCoverageAccounting:
    def test_no_harmful_faults_means_no_coverage_claim(self):
        """The satellite fix: all-masked / never-fired campaigns used to
        report a vacuous 1.0."""
        campaign = CampaignResult(results=[
            _synthetic(FaultOutcome.MASKED),
            _synthetic(FaultOutcome.NOT_FIRED),
        ])
        assert campaign.coverage is None
        assert campaign.harmful == 0
        assert campaign.fired == 1  # NOT_FIRED excluded explicitly

    def test_not_fired_excluded_from_denominator(self):
        campaign = CampaignResult(results=[
            _synthetic(FaultOutcome.DETECTED_RECOVERED),
            _synthetic(FaultOutcome.SILENT_CORRUPTION),
            _synthetic(FaultOutcome.NOT_FIRED),
            _synthetic(FaultOutcome.NOT_FIRED),
        ])
        assert campaign.harmful == 2
        assert campaign.coverage == 0.5

    def test_redundant_coverage_restricted_to_compared_strikes(self):
        result = ScaledCampaignResult(config=CampaignConfig(**SMALL))
        result.per_benchmark[BENCH] = CampaignResult(results=[
            _synthetic(FaultOutcome.DETECTED_RECOVERED, compared=True),
            _synthetic(FaultOutcome.SILENT_CORRUPTION, compared=False),
        ])
        assert result.coverage == 0.5
        assert result.redundant_coverage == 1.0

    def test_empty_scaled_result_has_no_coverage(self):
        result = ScaledCampaignResult(config=CampaignConfig(**SMALL))
        assert result.coverage is None
        assert result.redundant_coverage is None
        assert "no completed" in format_coverage_table(result)


def _countdown_program():
    """A tight countdown loop: an R_ARCH strike flipping a high bit of
    the loop counter makes the run retire ~1M extra instructions —
    far past :func:`hang_budget` — so the injection must classify as
    ``HANG`` instead of running (effectively) forever."""
    return assemble(
        """
main:
    addi r1, r0, 40
    addi r2, r0, 0
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
""",
        name="countdown",
    )


class TestHangBudget:
    def test_budget_is_deterministic_and_generous(self):
        assert hang_budget(1000) == 14_000
        assert hang_budget(0) == 10_000
        assert hang_budget(1000) == hang_budget(1000)

    def test_runaway_strike_classifies_as_hang(self):
        """Strike the loop counter's high bit in R-stream architectural
        state: recovery copies the corrupted counter into the A-stream
        and both streams loop ~2^20 more iterations."""
        program = _countdown_program()
        campaign = run_campaign(
            program, sites=[FaultSite.R_ARCH],
            target_seqs=range(9), bit=20,
        )
        counts = campaign.counts()
        assert counts.get(FaultOutcome.HANG, 0) > 0
        hangs = [r for r in campaign.results
                 if r.outcome is FaultOutcome.HANG]
        for result in hangs:
            assert result.detect_latency is None
            assert result.recovery_penalty is None
            assert not result.ecc_corrected

    def test_hang_is_harmful_and_unhandled(self):
        assert FaultOutcome.HANG in HARMFUL_OUTCOMES
        assert FaultOutcome.HANG not in HANDLED_OUTCOMES
        campaign = CampaignResult(results=[
            _synthetic(FaultOutcome.HANG),
            _synthetic(FaultOutcome.DETECTED_RECOVERED),
        ])
        assert campaign.harmful == 2
        assert campaign.coverage == 0.5

    def test_ecc_prevents_the_hang(self):
        """The same strikes under ECC are corrected before the corrupted
        counter can drive the loop: no hangs, only corrections."""
        program = _countdown_program()
        campaign = run_campaign(
            program, sites=[FaultSite.R_ARCH],
            target_seqs=range(9), bit=20, ecc=True,
        )
        counts = campaign.counts()
        assert counts.get(FaultOutcome.HANG, 0) == 0
        assert counts.get(FaultOutcome.ECC_CORRECTED, 0) > 0

    def test_clean_length_strike_does_not_hang(self):
        """A NOT_FIRED point (target beyond the stream) completes within
        the budget — the bound never misfires on well-behaved runs."""
        program = _countdown_program()
        result = inject_one(
            program,
            TransientFault(site=FaultSite.R_ARCH, target_seq=10**6, bit=20),
        )
        assert result.outcome is FaultOutcome.NOT_FIRED


class TestScaledCampaign:
    def test_campaign_without_ecc_exposes_the_hole(self, fresh_caches):
        result, stats = run_scaled_campaign(CampaignConfig(**SMALL))
        assert not result.failed_points
        assert len(result.results) == 6
        outcomes = {r.outcome for r in result.results}
        # Seed 7 on jpeg produces at least one unhandled harmful strike
        # (R_ARCH: detection happens, recovery uses corrupted state).
        assert FaultOutcome.DETECTED_UNRECOVERABLE in outcomes
        assert result.coverage is not None and result.coverage < 1.0

    def test_ecc_closes_the_hole_same_seed(self, fresh_caches):
        """Acceptance: with ECC, the same seed's R_ARCH strikes classify
        as corrected and redundant-instruction coverage reaches 100%."""
        result, stats = run_scaled_campaign(
            CampaignConfig(ecc=True, **SMALL))
        assert not result.failed_points
        outcomes = {r.outcome for r in result.results}
        assert FaultOutcome.DETECTED_UNRECOVERABLE not in outcomes
        assert FaultOutcome.SILENT_CORRUPTION not in outcomes
        assert FaultOutcome.ECC_CORRECTED in outcomes
        assert result.coverage == 1.0
        assert result.redundant_coverage == 1.0
        assert result.ecc_corrections > 0

    def test_bench_fault_json_is_byte_deterministic(self, fresh_caches,
                                                    tmp_path):
        config = CampaignConfig(**SMALL)
        result1, _ = run_scaled_campaign(config)
        path1 = write_fault_bench(result1, tmp_path / "a.json")

        # Rerun in the same process (warm caches: zero simulations).
        jobs.reset_simulation_count()
        result2, stats2 = run_scaled_campaign(config)
        path2 = write_fault_bench(result2, tmp_path / "b.json")
        assert jobs.simulation_count() == 0
        assert stats2.simulated == 0
        assert path1.read_bytes() == path2.read_bytes()

        payload = json.loads(path1.read_text())
        assert payload["points"] == 6
        assert payload["config"]["seed"] == 7
        assert BENCH in payload["table"]
        assert "metrics" in payload

    def test_parallel_campaign_matches_inline(self, fresh_caches, tmp_path):
        config = CampaignConfig(**SMALL)
        inline, _ = run_scaled_campaign(config, jobs=1)
        inline_path = write_fault_bench(inline, tmp_path / "inline.json")

        # Cold parallel run: separate disk cache, dropped memory cache.
        models.clear_cache()
        models.configure_disk_cache(enabled=True,
                                    cache_dir=str(tmp_path / "cache-par"))
        parallel, stats = run_scaled_campaign(config, jobs=2)
        assert stats.simulated == len(parallel.points)
        parallel_path = write_fault_bench(parallel, tmp_path / "par.json")
        assert inline_path.read_bytes() == parallel_path.read_bytes()

    def test_detection_latency_metrics_populated(self, fresh_caches):
        result, _ = run_scaled_campaign(CampaignConfig(**SMALL))
        snapshot = result.metrics().snapshot()
        # Seed 7's campaign detects faults; latency/penalty histograms
        # carry those observations.
        assert snapshot["fault.detect_latency.count"] > 0
        assert snapshot["fault.recovery_penalty.count"] > 0
        assert snapshot["fault.recovery_penalty.mean"] > 0
        detected = [r for r in result.results
                    if r.outcome is FaultOutcome.DETECTED_RECOVERED]
        assert all(r.detect_latency is not None for r in detected)
        assert all(r.recovery_penalty is not None for r in detected)


class TestModeSites:
    SITES = (FaultSite.A_RESULT, FaultSite.R_TRANSIENT, FaultSite.R_ARCH)

    def test_slipstream_keeps_configured_sites_verbatim(self):
        assert mode_sites("slipstream", self.SITES) == self.SITES

    def test_tmr_drops_a_stream_sites(self):
        sites = mode_sites("tmr", self.SITES)
        assert FaultSite.A_RESULT not in sites
        assert set(sites) == {FaultSite.R_TRANSIENT, FaultSite.R_ARCH}

    def test_decorrelated_appends_correlated(self):
        sites = mode_sites("decorrelated", self.SITES)
        assert sites[-1] is FaultSite.CORRELATED
        assert set(self.SITES) <= set(sites)

    def test_empty_intersection_falls_back_to_spec(self):
        sites = mode_sites("tmr", (FaultSite.A_RESULT,))
        assert sites  # never an empty campaign
        assert FaultSite.A_RESULT not in sites


class TestMultiModeSampling:
    FLAT = {BENCH: {"A": 8000, "R": 10000}}
    BY_MODE = {
        "slipstream": {BENCH: {"A": 8000, "R": 10000}},
        "tmr": {BENCH: {"A": 9000, "R": 9000}},
    }

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(benchmarks=(BENCH,), modes=("reliable",))
        with pytest.raises(ValueError):
            CampaignConfig(benchmarks=(BENCH,), modes=("nonsense",))

    def test_slipstream_stream_unchanged_by_extra_modes(self):
        """Back-compat: a multi-mode campaign's slipstream points are
        identical to the slipstream-only campaign's (the new modes draw
        from their own seeded RNG streams)."""
        solo = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=6,
                              seed=7)
        multi = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=6,
                               seed=7, modes=CAMPAIGN_MODES)
        solo_points = sample_points(solo, self.FLAT)
        multi_points = [p for p in sample_points(multi, self.FLAT)
                        if p.mode == "slipstream"]
        assert [(p.benchmark, p.fault) for p in solo_points] == \
            [(p.benchmark, p.fault) for p in multi_points]

    def test_modes_draw_distinct_strike_points(self):
        config = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=6,
                                seed=7, modes=("slipstream", "replay"))
        points = sample_points(config, self.FLAT)
        slip = [p.fault.target_seq for p in points if p.mode == "slipstream"]
        repl = [p.fault.target_seq for p in points if p.mode == "replay"]
        assert len(slip) == len(repl) == 6
        assert slip != repl

    def test_nested_lengths_keyed_by_mode(self):
        config = CampaignConfig(benchmarks=(BENCH,), points_per_benchmark=30,
                                seed=3, modes=("slipstream", "tmr"))
        for point in sample_points(config, self.BY_MODE):
            lengths = self.BY_MODE[point.mode][BENCH]
            n = lengths["A" if point.fault.site is FaultSite.A_RESULT
                        else "R"]
            assert point.fault.target_seq < n


class TestMultiModeCampaign:
    MULTI = dict(benchmarks=(BENCH,), points_per_benchmark=4, seed=11,
                 modes=CAMPAIGN_MODES)

    def test_every_mode_contributes_points(self, fresh_caches):
        result, _ = run_scaled_campaign(CampaignConfig(**self.MULTI))
        assert not result.failed_points
        by_mode = {mode: result.for_mode(mode) for mode in CAMPAIGN_MODES}
        for mode, sub in by_mode.items():
            assert len(sub.results) == 4, mode
            assert all(r.mode == mode for r in sub.results)

    def test_frontier_rows_complete(self, fresh_caches):
        result, _ = run_scaled_campaign(CampaignConfig(**self.MULTI))
        rows = result.frontier()
        assert [r["mode"] for r in rows] == list(CAMPAIGN_MODES)
        for row in rows:
            assert row["throughput_ipc"] is not None
            assert row["relative_ipc"] is not None
        frontier = {r["mode"]: r for r in rows}
        assert frontier["tmr"]["n_streams"] == 3
        # The throughput axis prices redundancy per context: TMR burns
        # three contexts on one useful stream, replay keeps most of one.
        assert frontier["tmr"]["relative_ipc"] < \
            frontier["slipstream"]["relative_ipc"] < \
            frontier["replay"]["relative_ipc"]
        table = format_frontier_table(result)
        for mode in CAMPAIGN_MODES:
            assert mode in table

    def test_payload_carries_per_mode_breakdown(self, fresh_caches,
                                                tmp_path):
        result, _ = run_scaled_campaign(CampaignConfig(**self.MULTI))
        payload = json.loads(
            write_fault_bench(result, tmp_path / "m.json").read_text())
        assert payload["modes"] == list(CAMPAIGN_MODES)
        assert set(payload["per_mode"]) == set(CAMPAIGN_MODES)
        assert [r["mode"] for r in payload["frontier"]] == \
            list(CAMPAIGN_MODES)
        for mode, entry in payload["per_mode"].items():
            assert entry["fired"] >= 0
            assert "outcomes" in entry

    def test_multi_mode_artifact_byte_deterministic(self, fresh_caches,
                                                    tmp_path):
        config = CampaignConfig(**self.MULTI)
        first, _ = run_scaled_campaign(config)
        path1 = write_fault_bench(first, tmp_path / "a.json")
        second, stats = run_scaled_campaign(config)
        path2 = write_fault_bench(second, tmp_path / "b.json")
        assert stats.simulated == 0  # warm rerun
        assert path1.read_bytes() == path2.read_bytes()

    def test_per_mode_metrics_registered(self, fresh_caches):
        result, _ = run_scaled_campaign(CampaignConfig(**self.MULTI))
        snapshot = result.metrics().snapshot()
        fired_modes = {r.mode for r in result.results
                       if r.outcome is not FaultOutcome.NOT_FIRED}
        for mode in fired_modes:
            keys = [k for k in snapshot
                    if k.startswith(f"fault.mode.{mode}.")]
            assert keys, f"no per-mode metrics for {mode}"

    def test_single_mode_payload_keeps_slipstream_shape(self, fresh_caches,
                                                        tmp_path):
        """The default campaign still reports mode slipstream only, and
        every pre-framework payload key survives."""
        result, _ = run_scaled_campaign(CampaignConfig(**SMALL))
        payload = json.loads(
            write_fault_bench(result, tmp_path / "s.json").read_text())
        assert payload["modes"] == ["slipstream"]
        for key in ("completed", "config", "coverage", "ecc_corrections",
                    "fired", "harmful", "metrics", "outcomes",
                    "per_benchmark", "points", "redundant_coverage",
                    "table"):
            assert key in payload, key


class TestFaultCLI:
    def test_cli_json_and_artifact(self, fresh_caches, tmp_path, capsys):
        from repro.fault.__main__ import main

        out = tmp_path / "BENCH_fault.json"
        code = main(["--benchmarks", BENCH, "--points", "3", "--seed", "7",
                     "--bench-out", str(out), "--format", "json"])
        assert code == 0
        assert out.exists()
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out.read_text())
        assert payload["config"]["benchmarks"] == [BENCH]

    def test_cli_table_with_ecc(self, fresh_caches, tmp_path, capsys):
        from repro.fault.__main__ import main

        code = main(["--benchmarks", BENCH, "--points", "3", "--seed", "7",
                     "--ecc", "--bench-out", "-"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "coverage" in captured
        assert "ECC corrections" in captured

    def test_cli_rejects_unknown_site(self, fresh_caches):
        from repro.fault.__main__ import main

        with pytest.raises(SystemExit):
            main(["--benchmarks", BENCH, "--sites", "nonsense",
                  "--bench-out", "-"])

    def test_cli_modes_all_prints_frontier(self, fresh_caches, tmp_path,
                                           capsys):
        from repro.fault.__main__ import main

        out = tmp_path / "modes.json"
        code = main(["--benchmarks", BENCH, "--modes", "all",
                     "--points", "2", "--seed", "11",
                     "--bench-out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "frontier" in captured
        payload = json.loads(out.read_text())
        assert payload["modes"] == list(CAMPAIGN_MODES)

    def test_cli_modes_comma_list(self, fresh_caches, capsys):
        from repro.fault.__main__ import main

        code = main(["--benchmarks", BENCH, "--modes", "slipstream,tmr",
                     "--points", "2", "--seed", "11", "--bench-out", "-",
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["modes"] == ["slipstream", "tmr"]

    def test_cli_rejects_unknown_mode(self, fresh_caches):
        from repro.fault.__main__ import main

        with pytest.raises(SystemExit):
            main(["--benchmarks", BENCH, "--modes", "slipstream,quintuple",
                  "--bench-out", "-"])
