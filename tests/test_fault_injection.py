"""Tests for transient-fault injection and the paper's section 3 claims."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.fault.coverage import (
    FaultOutcome,
    classify_run,
    inject_one,
    run_campaign,
)
from repro.fault.injector import FaultInjector, FaultSite, TransientFault
from repro.fault.scenarios import SCENARIOS, find_target_seq, run_scenario
from repro.isa.assembler import assemble

# A small removal-heavy loop (same shape as the slipstream tests but
# shorter, since every injection is a full co-simulation run).
WORKLOAD = """
main:
    addi r1, r0, 1500
    addi r10, r0, 0x100000
loop:
    addi r2, r0, 7
    sw   r2, 0(r10)
    addi r3, r0, 1
    addi r3, r0, 2
    add  r4, r4, r3
    xor  r5, r4, r1
    add  r6, r5, r4
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r4
    out  r6
    halt
"""


@pytest.fixture(scope="module")
def program():
    return assemble(WORKLOAD, name="fault-workload")


@pytest.fixture(scope="module")
def reference(program):
    return FunctionalSimulator(program).run()


class TestTransientFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransientFault(FaultSite.A_RESULT, target_seq=0, bit=32)
        with pytest.raises(ValueError):
            TransientFault(FaultSite.A_RESULT, target_seq=-1)

    def test_injector_fires_once(self, program):
        seq = find_target_seq(program, compared=True, after_seq=100)
        injector = FaultInjector(TransientFault(FaultSite.R_TRANSIENT, seq, bit=3))
        SlipstreamProcessor(program, fault_hook=injector).run()
        assert injector.report.fired
        assert injector.report.corrupted_value != injector.report.original_value

    def test_injector_does_not_fire_past_stream_end(self, program):
        injector = FaultInjector(
            TransientFault(FaultSite.R_TRANSIENT, 10**9, bit=3)
        )
        SlipstreamProcessor(program, fault_hook=injector).run()
        assert not injector.report.fired


class TestScenarios:
    def test_scenario_redundant_recovers(self, program):
        result = run_scenario(SCENARIOS["redundant"], program, after_seq=5000)
        assert result.outcome in SCENARIOS["redundant"].expected
        # The paper's central claim: a fault on a redundantly-executed
        # instruction must never silently corrupt the program.
        assert result.outcome is not FaultOutcome.SILENT_CORRUPTION

    def test_scenario_bypassed_escapes(self, program):
        result = run_scenario(SCENARIOS["bypassed"], program, after_seq=5000)
        assert result.outcome in SCENARIOS["bypassed"].expected
        assert result.struck_compared is False

    def test_bypassed_fault_on_consumed_location_corrupts(self):
        """Scenario 2's harmful form: the faulted skipped store's
        location is read later by a live load, so the corrupted value
        propagates into the R-stream's (authoritative) output.  The
        deviation may be detected, but recovery copies the already
        corrupted R-stream state: the output is wrong either way."""
        source = '''
        main:
            addi r1, r0, 1500
            addi r10, r0, 0x100000
        loop:
            addi r2, r0, 7
            sw   r2, 0(r10)          # silent store (removable)
            lw   r3, 0(r10)          # live read of the same location
            add  r4, r4, r3
            addi r1, r1, -1
            bne  r1, r0, loop
            out  r4
            halt
        '''
        program = assemble(source, name="consumed-location")
        seq = find_target_seq(program, compared=False, after_seq=4000)
        if seq is None:
            pytest.skip("removal never engaged on this run")
        result = inject_one(
            program, TransientFault(FaultSite.R_TRANSIENT, seq, bit=3)
        )
        assert result.outcome in (
            FaultOutcome.SILENT_CORRUPTION,
            FaultOutcome.DETECTED_UNRECOVERABLE,
        )

    def test_scenario_astream_recovers(self, program):
        result = run_scenario(SCENARIOS["astream"], program, after_seq=5000)
        assert result.outcome in SCENARIOS["astream"].expected
        assert result.outcome is not FaultOutcome.SILENT_CORRUPTION

    def test_find_target_distinguishes_compared(self, program):
        compared = find_target_seq(program, compared=True, after_seq=5000)
        skipped = find_target_seq(program, compared=False, after_seq=5000)
        assert compared is not None and skipped is not None
        assert compared != skipped


class TestRArchFaults:
    def test_arch_fault_never_recovers_silently_wrong(self, program, reference):
        """An architectural R-stream hit may be detected but cannot be
        recovered (recovery copies the corrupted state) — or it may be
        masked; it must never classify as detected+recovered with a
        wrong output."""
        seq = find_target_seq(program, compared=True, after_seq=5000)
        result = inject_one(
            program, TransientFault(FaultSite.R_ARCH, seq, bit=2)
        )
        if result.outcome is FaultOutcome.DETECTED_RECOVERED:
            # Only legitimate if the flipped bit truly did not matter.
            pytest.skip("fault was architecturally masked before use")
        assert result.outcome in (
            FaultOutcome.MASKED,
            FaultOutcome.SILENT_CORRUPTION,
            FaultOutcome.DETECTED_UNRECOVERABLE,
        )


class TestClassification:
    def test_classify_matrix(self):
        injector = FaultInjector(TransientFault(FaultSite.A_RESULT, 0))
        injector.report.fired = True
        ref = [1, 2]
        assert classify_run(ref, injector, [1, 2], 0, 1) is FaultOutcome.DETECTED_RECOVERED
        assert classify_run(ref, injector, [1, 2], 0, 0) is FaultOutcome.MASKED
        assert classify_run(ref, injector, [9, 2], 0, 0) is FaultOutcome.SILENT_CORRUPTION
        assert classify_run(ref, injector, [9, 2], 0, 1) is FaultOutcome.DETECTED_UNRECOVERABLE

    def test_not_fired(self):
        injector = FaultInjector(TransientFault(FaultSite.A_RESULT, 10**9))
        assert classify_run([1], injector, [1], 0, 0) is FaultOutcome.NOT_FIRED


class TestCampaign:
    def test_small_campaign_aggregates(self, program):
        campaign = run_campaign(
            program,
            sites=[FaultSite.A_RESULT, FaultSite.R_TRANSIENT],
            target_seqs=[6000, 9001],
        )
        assert len(campaign.results) == 4
        counts = campaign.counts()
        assert sum(counts.values()) == 4
        assert set(campaign.by_site()) <= {FaultSite.A_RESULT, FaultSite.R_TRANSIENT}
        # Coverage is None when no harmful fault fired (never a vacuous
        # 1.0); otherwise it is a proper fraction of harmful faults.
        if campaign.harmful:
            assert campaign.coverage is not None
            assert 0.0 <= campaign.coverage <= 1.0
        else:
            assert campaign.coverage is None

    def test_a_stream_faults_always_safe(self, program):
        """Faults confined to the A-stream are always transparently
        handled: the R-stream independently recomputes everything."""
        campaign = run_campaign(
            program, sites=[FaultSite.A_RESULT],
            target_seqs=[5000, 7003, 9001],
        )
        for result in campaign.results:
            assert result.outcome in (
                FaultOutcome.DETECTED_RECOVERED,
                FaultOutcome.MASKED,
                FaultOutcome.NOT_FIRED,
            )
