"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Opcode
from repro.isa.program import DATA_BASE, TEXT_BASE


class TestBasicAssembly:
    def test_empty_program(self):
        program = assemble("")
        assert len(program) == 0

    def test_single_instruction(self):
        program = assemble("addi r1, r0, 42")
        assert len(program) == 1
        instr = program.instructions[0]
        assert instr.opcode is Opcode.ADDI
        assert instr.rd == 1 and instr.rs1 == 0 and instr.imm == 42

    def test_comments_stripped(self):
        program = assemble("add r1, r2, r3  # a comment\n; whole-line comment\n")
        assert len(program) == 1

    def test_negative_and_hex_immediates(self):
        program = assemble("addi r1, r0, -7\naddi r2, r0, 0xff")
        assert program.instructions[0].imm == -7
        assert program.instructions[1].imm == 0xFF

    def test_all_mnemonics_assemble(self):
        source = "\n".join(
            [
                "main:",
                "add r1, r2, r3", "sub r1, r2, r3", "mul r1, r2, r3",
                "div r1, r2, r3", "rem r1, r2, r3", "and r1, r2, r3",
                "or r1, r2, r3", "xor r1, r2, r3", "nor r1, r2, r3",
                "sll r1, r2, r3", "srl r1, r2, r3", "sra r1, r2, r3",
                "slt r1, r2, r3", "sltu r1, r2, r3",
                "addi r1, r2, 1", "andi r1, r2, 1", "ori r1, r2, 1",
                "xori r1, r2, 1", "slli r1, r2, 1", "srli r1, r2, 1",
                "srai r1, r2, 1", "slti r1, r2, 1", "lui r1, 1",
                "lw r1, 0(r2)", "sw r1, 4(r2)",
                "beq r1, r2, main", "bne r1, r2, main", "blt r1, r2, main",
                "bge r1, r2, main", "bltu r1, r2, main", "bgeu r1, r2, main",
                "j main", "jal r31, main", "jalr r0, r31",
                "nop", "out r1", "halt",
            ]
        )
        program = assemble(source)
        assert len(program) == 37


class TestLabels:
    def test_branch_target_resolution(self):
        program = assemble("main:\nloop:\n  addi r1, r1, 1\n  bne r1, r2, loop\n  halt")
        branch = program.instructions[1]
        assert branch.target == program.labels["loop"] == TEXT_BASE

    def test_forward_reference(self):
        program = assemble("  beq r0, r0, done\n  nop\ndone:\n  halt")
        assert program.instructions[0].target == TEXT_BASE + 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\n nop\na:\n nop")

    def test_label_on_same_line_as_instruction(self):
        program = assemble("start: addi r1, r0, 1\nhalt")
        assert program.labels["start"] == TEXT_BASE
        assert len(program) == 2

    def test_data_label_as_load_offset(self):
        program = assemble(
            ".text\n lw r1, counter(r0)\n halt\n.data\ncounter: .word 99"
        )
        assert program.instructions[0].imm == DATA_BASE
        assert program.data[DATA_BASE] == 99


class TestDataSegment:
    def test_word_directive(self):
        program = assemble(".data\nvals: .word 10 20 30")
        base = program.labels["vals"]
        assert [program.data[base + 4 * i] for i in range(3)] == [10, 20, 30]

    def test_space_reserves_zeroed_words(self):
        program = assemble(".data\nbuf: .space 16\nafter: .word 1")
        assert program.labels["after"] == program.labels["buf"] + 16

    def test_label_on_same_line_as_word(self):
        program = assemble(".data\nx: .word 5\ny: .word 6")
        assert program.labels["y"] == program.labels["x"] + 4

    def test_space_must_be_word_multiple(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nb: .space 3")

    def test_align_directive(self):
        program = assemble(".data\na: .word 1\n.align 16\nb: .word 2")
        assert program.labels["b"] % 16 == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, x3")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r64")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")

    def test_instruction_in_data_segment(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble(".data\nadd r1, r2, r3")

    def test_halt_takes_no_operands(self):
        with pytest.raises(AssemblerError):
            assemble("halt r1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="offset"):
            assemble("lw r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1")

    def test_error_carries_structured_fields(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nnop\nbogus r1, r2")
        err = excinfo.value
        assert err.line_no == 3
        assert err.line == "bogus r1, r2"
        assert "unknown mnemonic" in err.message
        assert err.location == "line 3"
        assert "bogus" in str(err)

    def test_error_without_line_context(self):
        # Errors raised outside line processing have no location.
        with pytest.raises(AssemblerError) as excinfo:
            assemble("j nowhere")
        assert "nowhere" in str(excinfo.value)


class TestSourceInfo:
    SOURCE = "main:\n    addi r1, r0, 1\n    out r1\n    halt\n"

    def test_locs_align_with_instructions(self):
        program = assemble(self.SOURCE, name="t")
        info = program.source
        assert info is not None
        assert len(info.locs) == len(program)
        assert info.locs[0].line_no == 2
        assert info.locs[0].text.strip() == "addi r1, r0, 1"
        assert info.loc_of(2).text.strip() == "halt"

    def test_address_taken_records_immediate_labels(self):
        program = assemble(
            """
            main:
                addi r1, r0, fn     # address taken
                j    skip           # jump target: NOT taken
            fn:
                halt
            skip:
                halt
            """
        )
        taken = program.source.address_taken
        assert program.labels["fn"] in taken
        assert program.labels["skip"] not in taken

    def test_data_end_spans_data_segment(self):
        program = assemble(
            "main:\nhalt\n.data\na: .word 1 2 3\nb: .space 8"
        )
        assert program.source.data_end == DATA_BASE + 3 * 4 + 8
        assert program.data_end() == program.source.data_end

    def test_data_end_without_data(self):
        program = assemble("halt")
        assert program.data_end() == DATA_BASE


class TestProgramValidation:
    def test_listing_contains_labels_and_pcs(self):
        program = assemble("main:\n addi r1, r0, 1\n halt")
        listing = program.listing()
        assert "main:" in listing
        assert "addi" in listing

    def test_entry_defaults_to_text_base(self):
        assert assemble("nop").entry == TEXT_BASE

    def test_entry_uses_main_label(self):
        program = assemble("nop\nmain: halt")
        assert program.entry == TEXT_BASE + 4


class TestHiLoRelocation:
    def test_hi_lo_split_reassembles_address(self):
        source = """
        .text
            lui  r1, %hi(buf)
            ori  r1, r1, %lo(buf)
            addi r2, r0, 77
            sw   r2, 0(r1)
            lw   r3, buf(r0)
            out  r3
            halt
        .data
        buf: .word 0
        """
        from repro.arch.functional import FunctionalSimulator

        program = assemble(source)
        result = FunctionalSimulator(program).run()
        assert result.output == [77]

    def test_hi_lo_values(self):
        program = assemble(
            ".text\n addi r1, r0, %hi(0x12345678)\n"
            " addi r2, r0, %lo(0x12345678)\n halt"
        )
        assert program.instructions[0].imm == 0x1234
        assert program.instructions[1].imm == 0x5678
