"""Round-trip and fault-substrate tests for the binary encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import ENCODING_BITS, decode, encode
from repro.isa.instructions import Instruction, Opcode

_CONTROL = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU,
            Opcode.BGEU, Opcode.J, Opcode.JAL}


def instruction_strategy():
    regs = st.integers(min_value=0, max_value=63)
    imm = st.integers(min_value=-(2**31), max_value=2**31 - 1)
    target = st.integers(min_value=0, max_value=2**31 - 1).map(lambda v: v & ~0x3)

    def build(op, rd, rs1, rs2, value):
        if op in _CONTROL:
            return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, target=value & 0x7FFFFFFF)
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=value)

    return st.builds(build, st.sampled_from(list(Opcode)), regs, regs, regs, imm)


class TestRoundTrip:
    @given(instruction_strategy())
    def test_encode_decode_roundtrip(self, instr):
        assert decode(encode(instr)) == instr

    def test_fits_in_declared_width(self):
        instr = Instruction(Opcode.SW, rs1=63, rs2=63, imm=-1)
        assert encode(instr) < (1 << ENCODING_BITS)

    def test_invalid_opcode_field_raises(self):
        with pytest.raises(ValueError, match="invalid opcode"):
            decode(0xFF << 56)


class TestFaultSubstrate:
    def test_bit_flip_changes_instruction(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        word = encode(instr)
        flipped = word ^ (1 << 50)  # lowest rd bit
        assert decode(flipped).rd == 0

    def test_imm_bit_flip(self):
        instr = Instruction(Opcode.ADDI, rd=1, rs1=1, imm=4)
        flipped = encode(instr) ^ 0b1
        assert decode(flipped).imm == 5
