"""Unit tests for instruction definitions."""

import pytest

from repro.isa.instructions import (
    BRANCH_OPS,
    Instruction,
    InstrClass,
    MNEMONICS,
    Opcode,
    REG_COUNT,
    RRI_OPS,
    RRR_OPS,
)


class TestOpcodeTables:
    def test_every_opcode_has_unique_mnemonic(self):
        assert len(MNEMONICS) == len(Opcode)

    def test_mnemonic_lookup_roundtrip(self):
        for op in Opcode:
            assert MNEMONICS[op.mnemonic] is op

    def test_class_partitions(self):
        assert Opcode.ADD.klass is InstrClass.ALU
        assert Opcode.MUL.klass is InstrClass.MUL
        assert Opcode.DIV.klass is InstrClass.DIV
        assert Opcode.LW.klass is InstrClass.LOAD
        assert Opcode.SW.klass is InstrClass.STORE
        assert Opcode.BEQ.klass is InstrClass.BRANCH
        assert Opcode.J.klass is InstrClass.JUMP
        assert Opcode.JALR.klass is InstrClass.JUMP_INDIRECT


class TestInstruction:
    def test_register_bounds_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=REG_COUNT)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rs1=-1)

    def test_dest_reg_none_for_r0(self):
        assert Instruction(Opcode.ADD, rd=0, rs1=1, rs2=2).dest_reg() is None
        assert Instruction(Opcode.ADD, rd=5, rs1=1, rs2=2).dest_reg() == 5

    def test_store_has_no_dest_reg(self):
        assert Instruction(Opcode.SW, rs1=1, rs2=2).dest_reg() is None

    def test_branch_has_no_dest_reg(self):
        assert Instruction(Opcode.BEQ, rs1=1, rs2=2).dest_reg() is None

    def test_jal_dest_is_link_register(self):
        assert Instruction(Opcode.JAL, rd=31).dest_reg() == 31

    def test_src_regs_rrr(self):
        assert Instruction(Opcode.XOR, rd=3, rs1=1, rs2=2).src_regs() == (1, 2)

    def test_src_regs_store_reads_base_and_value(self):
        assert Instruction(Opcode.SW, rs1=4, rs2=7).src_regs() == (4, 7)

    def test_src_regs_lui_reads_nothing(self):
        assert Instruction(Opcode.LUI, rd=1, imm=5).src_regs() == ()

    def test_is_branch_only_for_conditionals(self):
        assert Instruction(Opcode.BNE, rs1=1, rs2=2).is_branch
        assert not Instruction(Opcode.J).is_branch
        assert Instruction(Opcode.J).is_control
        assert Instruction(Opcode.JALR, rd=0, rs1=31).is_control

    def test_frozen(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        with pytest.raises(Exception):
            instr.rd = 5

    def test_format_roundtrips_mnemonic(self):
        for op in RRR_OPS | RRI_OPS | BRANCH_OPS:
            instr = Instruction(op, rd=1, rs1=2, rs2=3, imm=4, target=0x1000)
            assert instr.format().split()[0] == op.mnemonic
