"""The observability layer (repro.obs): metrics registry, JSONL event
trace schema, RunReport aggregation, behavior-neutrality, and the
``python -m repro.obs`` CLI.

The load-bearing guarantees tested here (DESIGN.md §7.6):

* instrumentation is **behavior-neutral** — a run with observability on
  is bit-identical to the same run with it off;
* a :class:`~repro.obs.RunReport`'s headline counters equal the values
  the experiments already compute from the result object;
* traces are deterministic, schema-valid and index-contiguous.
"""

import io
import json

import pytest

from repro.core.slipstream import SlipstreamProcessor
from repro.eval.jobs import (
    baseline_spec,
    count_spec,
    job_label,
    simulate,
    simulate_with_report,
    slipstream_spec,
)
from repro.obs import (
    EVENT_FIELDS,
    MetricsRegistry,
    Observability,
    RunReport,
    TraceSchemaError,
    TraceWriter,
    build_report,
    diff_reports,
    job_observability,
    obs_enabled,
    read_trace,
    sanitize_label,
    summarize_events,
    validate_event,
    validate_trace,
)
from repro.obs.session import ENV_ENABLE, ENV_TRACE_DIR, for_path
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore
from repro.workloads.suite import get_benchmark

BENCH = "jpeg"  # the cheapest workload in the suite


def program():
    return get_benchmark(BENCH).program(1)


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_inc_and_set(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.snapshot() == {"x": 5}
        reg.counter("x").set(2)
        assert reg.snapshot() == {"x": 2}

    def test_gauge_tracks_extremes(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("occ")
        for value in (3, 9, 1):
            gauge.set(value)
        snap = reg.snapshot()
        assert snap == {"occ.last": 1, "occ.min": 1, "occ.max": 9}
        assert gauge.updates == 3

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in (1, 2, 3, 10):
            hist.observe(value)
        snap = reg.snapshot()
        assert snap["lat.count"] == 4
        assert snap["lat.mean"] == 4.0
        assert snap["lat.max"] == 10

    def test_instruments_are_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_set_counters_folds_component_tallies(self):
        reg = MetricsRegistry()
        reg.set_counters({"pushes": 7, "stalls": 2}, prefix="db.")
        assert reg.snapshot() == {"db.pushes": 7, "db.stalls": 2}

    def test_snapshot_is_deterministically_ordered(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()) == ["a", "b"]


# ----------------------------------------------------------------------
# Trace schema + writer.
# ----------------------------------------------------------------------

class TestTraceSchema:
    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": "nope", "i": 0})

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": "predict", "i": 0, "seq": 1})

    def test_missing_index_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event({"t": "start", "benchmark": "li", "model": "cmp"})

    def test_extra_fields_allowed(self):
        validate_event({"t": "trace_retired", "i": 0, "seq": 1,
                        "retired": 4, "a_cycle": 9, "anything": "extra"})

    def test_writer_validates_on_emit(self):
        writer = TraceWriter(io.StringIO())
        with pytest.raises(TraceSchemaError):
            writer.emit("predict", seq=1)

    def test_writer_emits_sorted_contiguous_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        writer.emit("start", benchmark="li", model="cmp")
        writer.emit("redirect", seq=3, stream="A")
        writer.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["i"] for line in lines] == [0, 1]
        # Keys are sorted -> byte-deterministic output.
        assert lines[0] == json.dumps(json.loads(lines[0]), sort_keys=True)
        assert validate_trace(path) == 2

    def test_validate_trace_flags_index_gap(self, tmp_path):
        path = tmp_path / "gap.jsonl"
        path.write_text(
            json.dumps({"t": "start", "i": 0, "benchmark": "b", "model": "m"})
            + "\n"
            + json.dumps({"t": "redirect", "i": 5, "seq": 1, "stream": "A"})
            + "\n"
        )
        with pytest.raises(TraceSchemaError):
            validate_trace(path)

    def test_iter_trace_flags_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceSchemaError):
            read_trace(path)


# ----------------------------------------------------------------------
# Environment-driven session config.
# ----------------------------------------------------------------------

class TestSession:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        monkeypatch.delenv(ENV_TRACE_DIR, raising=False)
        assert not obs_enabled()
        assert job_observability("x") is None

    def test_enable_via_env(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        obs = job_observability("cmp/li@1")
        assert isinstance(obs, Observability)
        assert obs.trace is None  # metrics-only mode

    def test_trace_dir_implies_enabled(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        monkeypatch.setenv(ENV_TRACE_DIR, str(tmp_path))
        assert obs_enabled()
        obs = job_observability("cmp/li@1[BR]#abcd")
        assert obs.trace_path == tmp_path / "cmp-li@1-BR-abcd.jsonl"

    def test_sanitize_label(self):
        assert sanitize_label("cmp/li@1[BR,WW]#ab") == "cmp-li@1-BR-WW-ab"


# ----------------------------------------------------------------------
# Behavior neutrality: observed run == unobserved run, bit for bit.
# ----------------------------------------------------------------------

class TestBehaviorNeutrality:
    def test_slipstream_identical_with_tracing(self, tmp_path):
        spec = slipstream_spec(BENCH)
        plain = simulate(spec)
        obs = for_path(tmp_path / "cmp.jsonl")
        observed = SlipstreamProcessor(program(), spec.config, obs=obs).run()
        obs.close()
        assert observed == plain

    def test_superscalar_identical_with_tracing(self, tmp_path):
        plain = SuperscalarCore(SS_64x4, program()).run()
        obs = for_path(tmp_path / "ss.jsonl")
        observed = SuperscalarCore(SS_64x4, program(), obs=obs).run()
        obs.close()
        assert observed == plain

    def test_traces_are_deterministic(self, tmp_path):
        spec = slipstream_spec(BENCH)
        for name in ("a", "b"):
            obs = for_path(tmp_path / f"{name}.jsonl")
            SlipstreamProcessor(program(), spec.config, obs=obs).run()
            obs.close()
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()


# ----------------------------------------------------------------------
# Trace content of one small slipstream run.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def slip_trace(tmp_path_factory):
    """One traced slipstream run: (result, events, trace path)."""
    path = tmp_path_factory.mktemp("trace") / "cmp.jsonl"
    spec = slipstream_spec(BENCH)
    obs = for_path(path)
    result = SlipstreamProcessor(program(), spec.config, obs=obs).run()
    obs.close()
    return result, read_trace(path), path


class TestSlipstreamTrace:
    def test_trace_is_schema_valid_and_contiguous(self, slip_trace):
        _, events, path = slip_trace
        assert validate_trace(path) == len(events) > 0

    def test_lifecycle_events(self, slip_trace):
        _, events, _ = slip_trace
        assert events[0]["t"] == "start"
        assert events[0]["benchmark"] == BENCH
        assert events[0]["model"] == "cmp"
        assert events[-1]["t"] == "summary"

    def test_only_known_event_types(self, slip_trace):
        _, events, _ = slip_trace
        assert {e["t"] for e in events} <= set(EVENT_FIELDS)

    def test_per_trace_events_present(self, slip_trace):
        _, events, _ = slip_trace
        by_type = {e["t"] for e in events}
        assert {"predict", "trace_retired", "cache"} <= by_type

    def test_trace_retired_count_matches_result(self, slip_trace):
        """``retired`` is the cumulative R-stream total: non-decreasing,
        ending at the result's count."""
        result, events, _ = slip_trace
        retired = [e["retired"] for e in events if e["t"] == "trace_retired"]
        assert retired == sorted(retired)
        assert retired[-1] == result.retired

    def test_backpressure_events_match_result(self, slip_trace):
        result, events, _ = slip_trace
        count = sum(1 for e in events if e["t"] == "backpressure")
        assert count == result.delay_buffer_backpressure

    def test_recovery_events_match_result(self, slip_trace):
        result, events, _ = slip_trace
        recoveries = [e for e in events if e["t"] == "recovery"]
        assert len(recoveries) == result.ir_mispredictions
        assert sum(e["latency"] for e in recoveries) == result.ir_penalty_total

    def test_removal_events_match_result(self, slip_trace):
        result, events, _ = slip_trace
        removals = [e for e in events if e["t"] == "removal"]
        assert sum(e["removed"] for e in removals) == result.a_removed
        by_kind = {}
        for event in removals:
            for kind, count in event["by_kind"].items():
                by_kind[kind] = by_kind.get(kind, 0) + count
        assert by_kind == {k: v for k, v in
                           result.removed_by_category.items() if v}

    def test_summary_counters_match_result(self, slip_trace):
        result, events, _ = slip_trace
        counters = events[-1]["counters"]
        assert counters["delay_buffer.backpressure_events"] == \
            result.delay_buffer_backpressure
        assert counters["recovery.recoveries"] == result.ir_mispredictions
        assert counters["slip.traces"] > 0

    def test_summarize_events(self, slip_trace):
        _, events, _ = slip_trace
        summary = summarize_events(events)
        assert summary["benchmark"] == BENCH
        assert summary["model"] == "cmp"
        assert summary["events"] == len(events)
        assert summary["by_type"]["start"] == 1


# ----------------------------------------------------------------------
# RunReport: counters equal what the experiments compute.
# ----------------------------------------------------------------------

class TestRunReport:
    def test_report_counters_equal_result_values(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        spec = slipstream_spec(BENCH)
        result, report = simulate_with_report(spec)
        assert isinstance(report, RunReport)
        assert report.job == job_label(spec.key)
        assert report.model == "cmp"
        assert report.benchmark == BENCH
        # The acceptance triple: IR-misp, removal fraction, backpressure.
        assert report.counters["ir_mispredictions"] == \
            result.ir_mispredictions
        assert report.counters["removal_fraction"] == \
            result.removal_fraction
        assert report.counters["delay_buffer_backpressure"] == \
            result.delay_buffer_backpressure
        assert report.counters["ipc"] == result.ipc
        for category, count in result.removed_by_category.items():
            assert report.counters[f"removed.{category}"] == count

    def test_registry_agrees_with_result(self, monkeypatch):
        """The independently-maintained registry tallies equal the
        result's own counters (cross-check, not just duplication)."""
        monkeypatch.setenv(ENV_ENABLE, "1")
        result, report = simulate_with_report(slipstream_spec(BENCH))
        assert report.counters["delay_buffer.backpressure_events"] == \
            result.delay_buffer_backpressure
        assert report.counters["recovery.recoveries"] == \
            result.ir_mispredictions

    def test_count_job_report(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        result, report = simulate_with_report(count_spec(BENCH))
        assert report.counters["instructions"] == result

    def test_baseline_report_and_trace(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_TRACE_DIR, str(tmp_path))
        result, report = simulate_with_report(baseline_spec(BENCH))
        assert report.counters["retired"] == result.retired
        assert report.counters["cycles"] == result.cycles
        assert report.events > 0
        assert validate_trace(report.trace_path) == report.events

    def test_disabled_returns_no_report(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        monkeypatch.delenv(ENV_TRACE_DIR, raising=False)
        result, report = simulate_with_report(count_spec(BENCH))
        assert report is None
        assert result > 0

    def test_json_round_trip(self):
        report = RunReport("cmp/li@1", "cmp", "li",
                           counters={"ipc": 1.5}, events=3,
                           trace_path="/tmp/t.jsonl")
        assert RunReport.from_json(report.to_json()) == report

    def test_diff_reports(self):
        a = RunReport("j", "m", "b", counters={"x": 1, "y": 2})
        b = RunReport("j", "m", "b", counters={"x": 1, "y": 5})
        assert diff_reports(a, b) == {"y": {"a": 2, "b": 5, "delta": 3}}

    def test_build_report_merges_registry(self):
        obs = Observability()
        obs.counter("extra.thing").inc(9)
        report = build_report("j", "count", "b", 42, obs)
        assert report.counters["instructions"] == 42
        assert report.counters["extra.thing"] == 9


# ----------------------------------------------------------------------
# The python -m repro.obs CLI.
# ----------------------------------------------------------------------

class TestCli:
    def test_summarize_and_validate(self, slip_trace, capsys):
        from repro.obs.__main__ import main
        _, _, path = slip_trace
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cmp" in out and "final counters" in out
        assert main(["validate", str(path)]) == 0

    def test_diff_identical_and_different(self, slip_trace, tmp_path,
                                          capsys):
        from repro.obs.__main__ import main
        _, _, path = slip_trace
        assert main(["diff", str(path), str(path)]) == 0
        assert "identical" in capsys.readouterr().out

        other = tmp_path / "ss.jsonl"
        obs = for_path(other)
        SuperscalarCore(SS_64x4, program(), obs=obs).run()
        obs.close()
        assert main(["diff", str(path), str(other)]) == 1

    def test_validate_rejects_malformed(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": "nope", "i": 0}\n')
        assert main(["validate", str(bad)]) == 2
        assert "INVALID" in capsys.readouterr().err
