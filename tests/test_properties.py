"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings, strategies as st

from repro.core.delay_buffer import DelayBuffer
from repro.core.rdfg import RDFGNode, connect, kill, select, try_propagate
from repro.core.removal import RemovalKind
from repro.uarch.config import CoreConfig
from repro.uarch.scheduler import InstrTiming, OoOScheduler


# ----------------------------------------------------------------------
# Scheduler invariants.
# ----------------------------------------------------------------------

def _timing_strategy():
    regs = st.integers(min_value=0, max_value=63)
    return st.builds(
        InstrTiming,
        new_block=st.booleans(),
        icache_penalty=st.sampled_from([0, 0, 0, 12]),
        srcs=st.tuples(regs, regs),
        dest=st.one_of(st.none(), regs),
        latency=st.integers(min_value=1, max_value=6),
        is_load=st.booleans(),
        is_store=st.booleans(),
        mem_addr=st.one_of(st.none(), st.integers(0, 64).map(lambda a: a * 4)),
        dcache_penalty=st.sampled_from([0, 0, 14]),
        ready_override=st.one_of(st.none(), st.integers(0, 50)),
        fetch_floor=st.integers(0, 20),
        merged=st.booleans(),
    )


class TestSchedulerProperties:
    @given(st.lists(_timing_strategy(), min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_pipeline_stage_ordering(self, timings):
        """fetch <= dispatch <= issue < complete < retire, always."""
        sched = OoOScheduler(CoreConfig(name="prop"))
        first = True
        for timing in timings:
            ts = sched.add(timing._replace(new_block=timing.new_block or first))
            first = False
            assert ts.fetch <= ts.dispatch <= ts.issue < ts.complete < ts.retire

    @given(st.lists(_timing_strategy(), min_size=2, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_inorder_dispatch_and_retire(self, timings):
        sched = OoOScheduler(CoreConfig(name="prop"))
        last_dispatch = last_retire = 0
        first = True
        for timing in timings:
            ts = sched.add(timing._replace(new_block=timing.new_block or first))
            first = False
            assert ts.dispatch >= last_dispatch
            assert ts.retire >= last_retire
            last_dispatch, last_retire = ts.dispatch, ts.retire

    @given(st.lists(_timing_strategy(), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_width_limits_hold(self, timings):
        config = CoreConfig(name="prop")
        sched = OoOScheduler(config, merge_width=2)
        dispatches = {}
        retires = {}
        first = True
        for timing in timings:
            ts = sched.add(timing._replace(new_block=timing.new_block or first))
            first = False
            dispatches[ts.dispatch] = dispatches.get(ts.dispatch, 0) + 1
            retires[ts.retire] = retires.get(ts.retire, 0) + 1
        assert max(dispatches.values()) <= config.dispatch_width
        assert max(retires.values()) <= config.retire_width

    @given(st.lists(_timing_strategy(), min_size=1, max_size=80), st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_redirect_monotonic_fetch(self, timings, redirect_at):
        """After a redirect, no later block fetches before the floor."""
        sched = OoOScheduler(CoreConfig(name="prop"))
        sched.add(timings[0]._replace(new_block=True))
        sched.redirect(redirect_at)
        floor = redirect_at + 1
        for timing in timings[1:]:
            ts = sched.add(timing)
            if timing.new_block:
                assert ts.fetch >= min(floor, ts.fetch + 1) - 1  # non-strict sanity
                assert ts.fetch >= floor or timing.new_block is False


# ----------------------------------------------------------------------
# Delay buffer invariants.
# ----------------------------------------------------------------------

class TestDelayBufferProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 32), st.integers(0, 50)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_occupancy_never_exceeds_capacity_and_pushes_monotone(self, groups):
        buf = DelayBuffer(capacity=64)
        clock = 0
        last_push = 0
        for count, delta in groups:
            clock += delta
            push = buf.push(count, clock)
            assert push >= clock
            assert buf.occupancy <= buf.capacity
            buf.mark_popped(push + 5)
            last_push = push

    @given(st.lists(st.integers(1, 16), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_flush_resets(self, counts):
        buf = DelayBuffer(capacity=1024)
        for count in counts:
            buf.push(count, 0)
        buf.flush()
        assert buf.occupancy == 0


# ----------------------------------------------------------------------
# R-DFG invariants.
# ----------------------------------------------------------------------

def _chain(n, trace_seq=0):
    nodes = [RDFGNode(trace_seq, i) for i in range(n)]
    for producer, consumer in zip(nodes, nodes[1:]):
        connect(producer, consumer)
    return nodes


class TestRDFGProperties:
    @given(st.integers(min_value=2, max_value=20))
    def test_selecting_tail_and_killing_selects_whole_chain(self, n):
        nodes = _chain(n)
        select(nodes[-1], RemovalKind.BR)
        for node in nodes[:-1]:
            kill(node, unreferenced=False)
        assert all(node.selected for node in nodes)
        for node in nodes[:-1]:
            assert node.kind & RemovalKind.PROPAGATED

    @given(st.integers(min_value=2, max_value=20), st.integers(0, 18))
    def test_external_ref_blocks_propagation(self, n, external_at):
        external_at = min(external_at, n - 2)
        nodes = _chain(n)
        external = RDFGNode(trace_seq=1, index=0)  # different trace
        connect(nodes[external_at], external)
        select(nodes[-1], RemovalKind.BR)
        for node in nodes[:-1]:
            kill(node, unreferenced=False)
        assert not nodes[external_at].selected
        # Everything strictly between the externally-referenced node and
        # the tail still propagates.
        for node in nodes[external_at + 1:-1]:
            assert node.selected

    @given(st.integers(min_value=1, max_value=20))
    def test_unkilled_nodes_never_propagate(self, n):
        nodes = _chain(n)
        select(nodes[-1], RemovalKind.BR)
        for node in nodes[:-1]:
            try_propagate(node)
        assert not any(node.selected for node in nodes[:-1])
