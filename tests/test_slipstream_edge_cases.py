"""Edge-case and stress tests for the slipstream co-simulation."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamConfig, SlipstreamProcessor
from repro.isa.assembler import assemble


def check(source, **config_kwargs):
    program = assemble(source, name="edge")
    reference = FunctionalSimulator(program).run()
    config = SlipstreamConfig(**config_kwargs) if config_kwargs else None
    result = SlipstreamProcessor(assemble(source, name="edge"), config).run()
    assert result.output == reference.output
    assert result.retired == reference.instruction_count
    assert result.recovery_audit_shortfalls == 0
    return result


class TestControlFlowShapes:
    def test_trivial_program(self):
        check("out r0\nhalt")

    def test_single_instruction(self):
        check("halt")

    def test_call_return_through_jalr(self):
        check(
            """
            main:
                addi r1, r0, 300
            loop:
                jal  r31, work
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            work:
                addi r4, r4, 3
                jalr r0, r31
            """
        )

    def test_nested_calls(self):
        check(
            """
            main:
                addi r1, r0, 200
            loop:
                jal  r31, outer
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            outer:
                add  r20, r31, r0      # save link
                jal  r31, inner
                add  r31, r20, r0      # restore link
                jalr r0, r31
            inner:
                addi r4, r4, 1
                jalr r0, r31
            """
        )

    def test_computed_dispatch_via_jalr(self):
        # A jump table: jalr targets alternate between two handlers.
        check(
            """
            main:
                addi r1, r0, 400
                addi r10, r0, ha
                addi r11, r0, hb
            loop:
                andi r2, r1, 1
                beq  r2, r0, even
                add  r12, r10, r0
                j    dispatch
            even:
                add  r12, r11, r0
            dispatch:
                jal  r31, trampoline
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            trampoline:
                jalr r0, r12
            ha:
                addi r4, r4, 1
                jalr r0, r31
            hb:
                addi r4, r4, 2
                jalr r0, r31
            """
        )

    def test_deeply_nested_loops(self):
        check(
            """
            main:
                addi r1, r0, 40
            outer:
                addi r2, r0, 40
            inner:
                add  r4, r4, r2
                addi r2, r2, -1
                bne  r2, r0, inner
                addi r1, r1, -1
                bne  r1, r0, outer
                out  r4
                halt
            """
        )


class TestRemovalUnderStress:
    def test_tiny_trace_length(self):
        check(
            """
            main:
                addi r1, r0, 600
            loop:
                addi r2, r0, 5
                add  r4, r4, r2
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            """,
            trace_length=4,
        )

    def test_scope_of_one_trace(self):
        check(
            """
            main:
                addi r1, r0, 600
                addi r10, r0, 0x100000
            loop:
                addi r2, r0, 7
                sw   r2, 0(r10)
                add  r4, r4, r2
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            """,
            ir_scope_traces=1,
        )

    def test_zero_confidence_threshold_is_aggressive_but_correct(self):
        result = check(
            """
            main:
                addi r1, r0, 1200
                addi r10, r0, 0x100000
            loop:
                addi r2, r0, 7
                sw   r2, 0(r10)
                addi r3, r0, 1
                addi r3, r0, 2
                add  r4, r4, r3
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            """,
            confidence_threshold=0,
        )
        assert result.a_removed > 0

    def test_phase_change_causes_recovery(self):
        # A branch stable for thousands of iterations flips near the
        # end: by then the branch is removed, so the flip is an
        # IR-misprediction (removed mispredicted branch).
        result = check(
            """
            main:
                addi r1, r0, 4000
            loop:
                slti r5, r1, 200
                beq  r5, r0, skip
                addi r6, r6, 1
            skip:
                add  r4, r4, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                out  r6
                halt
            """,
            confidence_threshold=8,
        )
        assert result.ir_mispredictions >= 1
        assert result.avg_ir_penalty >= 21

    def test_memory_aliasing_between_silent_and_live_stores(self):
        # The same address receives a silent store and, rarely, a live
        # store through a different static instruction.
        check(
            """
            main:
                addi r1, r0, 2000
                addi r10, r0, 0x100000
            loop:
                addi r2, r0, 7
                sw   r2, 0(r10)          # silent most of the time
                andi r5, r1, 255
                bne  r5, r0, no_touch
                sw   r1, 0(r10)          # rare live overwrite
            no_touch:
                lw   r3, 0(r10)
                add  r4, r4, r3
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            """
        )


class TestBufferAndTransfer:
    @pytest.mark.parametrize("capacity", [32, 64, 1024])
    def test_capacity_sweep_preserves_correctness(self, capacity):
        check(
            """
            main:
                addi r1, r0, 800
            loop:
                add  r4, r4, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            """,
            delay_buffer_capacity=capacity,
        )

    def test_large_transfer_latency(self):
        result = check(
            """
            main:
                addi r1, r0, 800
            loop:
                add  r4, r4, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                out  r4
                halt
            """,
            transfer_latency=20,
        )
        assert result.r_cycles >= result.a_cycles
