"""End-to-end oracle validation on real suite workloads.

The paper validates its detailed simulator against an independent
functional simulator (section 4); this is our equivalent: the full
slipstream machine must retire exactly the functional stream, with
bit-identical output, on genuine suite benchmarks (the two fastest, to
keep the test suite quick — the bench harness covers all eight).
"""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.core.slipstream import SlipstreamProcessor
from repro.uarch.config import SS_128x8, SS_64x4
from repro.uarch.core import SuperscalarCore
from repro.workloads.suite import get_benchmark

FAST_BENCHES = ("jpeg", "go")


@pytest.mark.parametrize("name", FAST_BENCHES)
class TestSuiteOracleValidation:
    def test_slipstream_matches_functional(self, name):
        bench = get_benchmark(name)
        reference = FunctionalSimulator(bench.program()).run()
        result = SlipstreamProcessor(bench.program()).run()
        assert result.output == reference.output
        assert result.retired == reference.instruction_count
        assert result.recovery_audit_shortfalls == 0

    def test_timing_models_retire_exact_stream(self, name):
        bench = get_benchmark(name)
        reference = FunctionalSimulator(bench.program()).run()
        for config in (SS_64x4, SS_128x8):
            result = SuperscalarCore(config, bench.program()).run()
            assert result.retired == reference.instruction_count

    def test_models_agree_on_cache_behaviour(self, name):
        """Same program, same caches: the two core sizes see identical
        access streams (timing differs, architectural stream doesn't)."""
        bench = get_benchmark(name)
        small = SuperscalarCore(SS_64x4, bench.program()).run()
        big = SuperscalarCore(SS_128x8, bench.program()).run()
        assert small.dcache_accesses == big.dcache_accesses
        assert small.dcache_misses == big.dcache_misses
