"""Unit tests for the hybrid path-based trace predictor."""

from repro.trace.predictor import TracePredictor, TracePredictorConfig
from repro.trace.trace_id import TraceId


def tid(n, outcomes=()):
    return TraceId(0x1000 + 4 * n, tuple(outcomes))


class TestTracePredictorLearning:
    def test_untrained_predicts_none(self):
        assert TracePredictor().predict() is None

    def test_learns_repeating_sequence(self):
        pred = TracePredictor()
        sequence = [tid(0), tid(1), tid(2)]
        # Two warmup laps, then predictions must be perfect.
        for _ in range(2):
            for t in sequence:
                pred.predict()
                pred.update(t)
        correct = 0
        for _ in range(3):
            for t in sequence:
                if pred.predict() == t:
                    correct += 1
                pred.update(t)
        assert correct == 9

    def test_learns_path_correlated_pattern(self):
        """A follows B or C depending on deeper history — the correlated
        table must disambiguate what the simple table cannot."""
        pred = TracePredictor()
        # Pattern: X A B | Y A C | repeat.  After trace A, the next trace
        # depends on what preceded A.
        pattern = [tid(10), tid(1), tid(2), tid(11), tid(1), tid(3)]
        for _ in range(8):
            for t in pattern:
                pred.predict()
                pred.update(t)
        correct = 0
        for _ in range(2):
            for t in pattern:
                if pred.predict() == t:
                    correct += 1
                pred.update(t)
        assert correct == 12

    def test_counter_guards_replacement(self):
        """An established prediction survives a single contrary outcome."""
        pred = TracePredictor(TracePredictorConfig(index_bits=8))
        for _ in range(4):
            pred.predict()
            pred.update(tid(1))  # history [.. 1], predict after 1 -> 1
        assert pred.predict() == tid(1)
        pred.update(tid(2))  # single contrary update (history was [1 1 ..])
        # Re-establish the same history context: after a string of 1s the
        # prediction should still favour 1 (counter absorbed one hit).
        for _ in range(2):
            pred.update(tid(1))
        assert pred.predict() == tid(1)

    def test_statistics_counters(self):
        pred = TracePredictor()
        pred.predict()
        assert pred.lookups == 1


class TestRecoverySupport:
    def test_history_snapshot_restore(self):
        pred = TracePredictor()
        for n in range(5):
            pred.update(tid(n))
        snap = pred.history_snapshot()
        pred.update(tid(99))
        pred.restore_history(snap)
        assert pred.history_snapshot() == snap

    def test_restored_history_drives_prediction(self):
        pred = TracePredictor()
        sequence = [tid(0), tid(1), tid(2), tid(3)]
        for _ in range(6):
            for t in sequence:
                pred.update(t)
        snap = pred.history_snapshot()
        prediction_before = pred.predict()
        # Wander off, then restore: prediction must match.
        for n in range(20, 24):
            pred.update(tid(n))
        pred.restore_history(snap)
        assert pred.predict() == prediction_before
