"""Unit tests for trace selection, trace ids, and static trace expansion."""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.isa.assembler import assemble
from repro.trace.selection import (
    StaticTraceWalker,
    TraceExpansionError,
    TraceSelector,
    TRACE_LENGTH,
    trace_id_of,
)
from repro.trace.trace_id import TraceId


LOOP_PROGRAM = """
main:
    addi r1, r0, 100
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def traces_of(source, trace_length=TRACE_LENGTH):
    program = assemble(source)
    sim = FunctionalSimulator(program)
    selector = TraceSelector(trace_length)
    return program, list(selector.chunk(sim.steps()))


class TestTraceSelector:
    def test_traces_cover_whole_stream(self):
        program, traces = traces_of(LOOP_PROGRAM)
        total = sum(len(t) for t in traces)
        count = FunctionalSimulator(program).run().instruction_count
        assert total == count

    def test_length_limit_respected(self):
        _, traces = traces_of(LOOP_PROGRAM, trace_length=8)
        assert all(len(t) <= 8 for t in traces)

    def test_halt_terminates_trace(self):
        _, traces = traces_of("nop\nnop\nhalt")
        assert len(traces) == 1
        assert traces[-1].instructions[-1].instr.opcode.mnemonic == "halt"

    def test_jalr_terminates_trace(self):
        source = """
        main:
            jal r31, func
            halt
        func:
            nop
            jalr r0, r31
        """
        _, traces = traces_of(source, trace_length=32)
        # jal..func..jalr is one trace (jalr cuts it), halt is the next.
        assert len(traces) == 2
        assert traces[0].instructions[-1].instr.opcode.mnemonic == "jalr"

    def test_trace_id_outcomes_match_branches(self):
        _, traces = traces_of(LOOP_PROGRAM, trace_length=6)
        for trace in traces:
            branch_count = sum(1 for d in trace.instructions if d.is_branch)
            assert trace.trace_id.branch_count == branch_count

    def test_same_path_same_ids(self):
        """Determinism: two identical runs chunk identically."""
        _, t1 = traces_of(LOOP_PROGRAM, trace_length=8)
        _, t2 = traces_of(LOOP_PROGRAM, trace_length=8)
        assert [t.trace_id for t in t1] == [t.trace_id for t in t2]

    def test_bad_trace_length_rejected(self):
        with pytest.raises(ValueError):
            TraceSelector(0)

    def test_flush_returns_partial(self):
        selector = TraceSelector(32)
        program = assemble("nop\nnop\nhalt")
        stream = list(FunctionalSimulator(program).steps())
        for dyn in stream[:-1]:
            assert selector.feed(dyn) is None
        # Stream ended without a terminator: flush yields the remainder.
        selector2 = TraceSelector(32)
        for dyn in stream[:2]:
            selector2.feed(dyn)
        tail = selector2.flush()
        assert tail is not None and len(tail) == 2


class TestTraceId:
    def test_mix_is_deterministic(self):
        tid = TraceId(0x1000, (True, False, True))
        assert tid.mix() == TraceId(0x1000, (True, False, True)).mix()

    def test_mix_differs_on_outcomes(self):
        a = TraceId(0x1000, (True,))
        b = TraceId(0x1000, (False,))
        assert a.mix() != b.mix()

    def test_str_encodes_path(self):
        assert str(TraceId(0x1000, (True, False))) == "0x1000:TN"


class TestStaticTraceWalker:
    def test_expansion_matches_dynamic_trace(self):
        program, traces = traces_of(LOOP_PROGRAM, trace_length=8)
        walker = StaticTraceWalker(program, trace_length=8)
        for trace in traces:
            steps = walker.expand(trace.trace_id)
            assert [s.pc for s in steps] == [d.pc for d in trace.instructions]
            assert [s.instr for s in steps] == [d.instr for d in trace.instructions]

    def test_expansion_follows_direct_jumps(self):
        source = "main:\n j skip\nnever: nop\nskip: nop\nhalt"
        program, traces = traces_of(source)
        walker = StaticTraceWalker(program)
        steps = walker.expand(traces[0].trace_id)
        pcs = [s.pc for s in steps]
        assert program.labels["never"] not in pcs
        assert program.labels["skip"] in pcs

    def test_indirect_jump_has_unknown_next_pc(self):
        source = "main: jal r31, f\nhalt\nf: jalr r0, r31"
        program, traces = traces_of(source)
        walker = StaticTraceWalker(program)
        steps = walker.expand(traces[0].trace_id)
        assert steps[-1].instr.opcode.mnemonic == "jalr"
        assert steps[-1].next_pc is None

    def test_too_few_outcomes_raises(self):
        program, traces = traces_of(LOOP_PROGRAM, trace_length=8)
        tid = traces[0].trace_id
        if tid.branch_count == 0:
            pytest.skip("first trace embeds no branch")
        bad = TraceId(tid.start_pc, tid.outcomes[:-1])
        with pytest.raises(TraceExpansionError):
            StaticTraceWalker(program, trace_length=8).expand(bad)

    def test_bad_start_pc_raises(self):
        program, _ = traces_of(LOOP_PROGRAM)
        with pytest.raises(TraceExpansionError):
            StaticTraceWalker(program).expand(TraceId(0xDEAD0, ()))

    def test_trace_id_of_roundtrip(self):
        _, traces = traces_of(LOOP_PROGRAM, trace_length=8)
        for trace in traces:
            assert trace_id_of(trace.instructions) == trace.trace_id
