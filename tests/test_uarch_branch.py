"""Unit tests for conventional branch predictors and the BTB."""

from repro.isa.assembler import assemble
from repro.uarch.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    HybridPredictor,
)
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore

import pytest


class TestBimodal:
    def test_learns_bias(self):
        pred = BimodalPredictor()
        for _ in range(10):
            pred.update(0x1000, True)
        assert pred.predict(0x1000)

    def test_hysteresis_survives_single_flip(self):
        pred = BimodalPredictor()
        for _ in range(4):
            pred.update(0x1000, True)
        pred.update(0x1000, False)
        assert pred.predict(0x1000)

    def test_cannot_learn_alternation(self):
        pred = BimodalPredictor()
        outcomes = [bool(i % 2) for i in range(200)]
        for taken in outcomes:
            pred.update(0x1000, taken)
        assert pred.accuracy < 0.75


class TestGshare:
    def test_learns_alternation_via_history(self):
        pred = GsharePredictor()
        for i in range(400):
            pred.update(0x1000, bool(i % 2))
        assert pred.accuracy > 0.8

    def test_learns_pattern(self):
        pattern = [True, True, False, True, False, False]
        pred = GsharePredictor()
        for i in range(600):
            pred.update(0x2000, pattern[i % len(pattern)])
        assert pred.accuracy > 0.8


class TestHybrid:
    def test_chooser_tracks_better_component(self):
        pred = HybridPredictor()
        # Heavily biased branch: bimodal suffices; alternating branch:
        # gshare needed.  The hybrid should do well on both.
        for i in range(600):
            pred.update(0x1000, True)
            pred.update(0x2000, bool(i % 2))
        assert pred.accuracy > 0.85


class TestBTB:
    def test_last_target(self):
        btb = BranchTargetBuffer()
        assert btb.predict(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.predict(0x1000) == 0x2000
        btb.update(0x1000, 0x3000)
        assert btb.predict(0x1000) == 0x3000


class TestConventionalControlCore:
    SOURCE = """
    main:
        addi r1, r0, 3000
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        out  r2
        halt
    """

    def test_hybrid_control_runs_and_predicts_loop(self):
        program = assemble(self.SOURCE, name="hybrid-control")
        result = SuperscalarCore(SS_64x4, program, control="hybrid").run()
        assert result.retired == 3000 * 3 + 3
        assert result.mispredictions_per_1000 < 2.0
        assert result.model.endswith("/hybrid")

    def test_unknown_control_rejected(self):
        program = assemble(self.SOURCE, name="x")
        with pytest.raises(ValueError, match="control predictor"):
            SuperscalarCore(SS_64x4, program, control="ttage")
