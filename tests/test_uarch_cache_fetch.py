"""Unit tests for the cache model and fetch-block formation."""

import pytest

from repro.uarch.cache import Cache
from repro.uarch.config import CacheConfig
from repro.uarch.fetch import BlockFormer


def tiny_cache(sets=2, assoc=2, line=64):
    return Cache(CacheConfig(size_bytes=sets * assoc * line, assoc=assoc,
                             line_bytes=line, miss_penalty=10))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.probe(0)
        assert cache.probe(0)
        assert cache.probe(63)  # same line

    def test_different_lines_miss_separately(self):
        cache = tiny_cache()
        cache.probe(0)
        assert not cache.probe(64)

    def test_lru_eviction(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.probe(0)      # line 0
        cache.probe(64)     # line 1
        cache.probe(0)      # touch line 0 (line 1 now LRU)
        cache.probe(128)    # evicts line 1
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_set_indexing_isolates_sets(self):
        cache = tiny_cache(sets=2, assoc=1)
        cache.probe(0)    # set 0
        cache.probe(64)   # set 1
        assert cache.probe(0) and cache.probe(64)

    def test_probe_range_spanning_lines(self):
        cache = tiny_cache()
        assert not cache.probe_range(32, 64)  # spans lines 0 and 1
        assert cache.probe_range(32, 64)

    def test_probe_range_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tiny_cache().probe_range(0, 0)

    def test_stats(self):
        cache = tiny_cache()
        cache.probe(0)
        cache.probe(0)
        assert cache.accesses == 2 and cache.misses == 1
        assert cache.miss_rate == 0.5

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, assoc=3, line_bytes=64, miss_penalty=1)


class TestBlockFormer:
    def test_first_instruction_starts_block(self):
        former = BlockFormer(4)
        assert former.place(ends_block=False)

    def test_sequential_instructions_share_block(self):
        former = BlockFormer(4)
        former.place(False)
        assert not former.place(False)

    def test_width_limit_breaks_block(self):
        former = BlockFormer(2)
        assert former.place(False)
        assert not former.place(False)
        assert former.place(False)  # third instruction: new block

    def test_taken_control_breaks_block(self):
        former = BlockFormer(8)
        former.place(ends_block=True)
        assert former.place(False)

    def test_force_break(self):
        former = BlockFormer(8)
        former.place(False)
        former.force_break()
        assert former.place(False)

    def test_block_count(self):
        former = BlockFormer(2)
        for _ in range(5):
            former.place(False)
        assert former.blocks == 3

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            BlockFormer(0)
