"""Tests for the memoized timing engine (:mod:`repro.uarch.compiled_timing`).

The engine replays per-trace timing deltas with integer adds; its whole
contract is *bit-identity* with the scalar :class:`OoOScheduler` path.
These tests check that contract three ways: property-based over random
programs (superscalar timestamps and full slipstream results), through
the timeline recorder (tracing must compose with, not bypass, the
engine), and through observability (instrumentation stays neutral while
the hit/miss/fallback counters surface in snapshots and RunReports).
"""

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.core.slipstream import SlipstreamProcessor
from repro.isa.assembler import assemble
from repro.obs import Observability
from repro.obs.report import build_report
from repro.uarch.compiled_timing import TIMING_ENV, compiled_timing_enabled
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore
from repro.uarch.timeline import trace_core_timeline


@contextmanager
def _timing_mode(flag):
    """Force the compiled-timing mode for the enclosed construction."""
    old = os.environ.get(TIMING_ENV)
    os.environ[TIMING_ENV] = flag
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(TIMING_ENV, None)
        else:
            os.environ[TIMING_ENV] = old


# A loop long enough that trace signatures recur, so the engine records
# deltas (second sight) and replays them — without hits these tests
# would only exercise the scalar fallback.
REPLAY_LOOP = """
main:
    addi r1, r0, 600
    addi r5, r0, 12345
    addi r20, r0, 512
loop:
    lui  r6, 0x41c6
    ori  r6, r6, 0x4e6d
    mul  r5, r5, r6
    addi r5, r5, 12345
    srli r7, r5, 27
    andi r7, r7, 1
    andi r21, r5, 252
    add  r21, r21, r20
    lw   r8, 0(r21)
    add  r8, r8, r7
    sw   r8, 0(r21)
    beq  r7, r0, skip
    addi r2, r2, 1
skip:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
"""


@st.composite
def _program_text(draw):
    """Random looped program mixing ALU ops, long-latency multiplies,
    masked (always aligned, non-negative) loads/stores, and
    LCG-driven data-dependent branches — enough entropy to exercise
    redirects, i/d-cache penalties and store-forwarding mixes, enough
    repetition that the memoized engine actually gets hits."""
    lines = [
        "main:",
        "    addi r20, r0, 512",
        f"    addi r5, r0, {draw(st.integers(1, 60000))}",
        f"    addi r1, r0, {draw(st.integers(30, 120))}",
        "loop:",
    ]
    for i in range(draw(st.integers(2, 10))):
        kind = draw(st.sampled_from(
            ["alu", "alu", "mul", "load", "store", "branch"]))
        d = draw(st.sampled_from([2, 3, 4, 8]))
        a = draw(st.sampled_from([2, 3, 4, 5, 8]))
        b = draw(st.sampled_from([2, 3, 4, 5, 8]))
        if kind == "alu":
            op = draw(st.sampled_from(["add", "xor"]))
            lines.append(f"    {op} r{d}, r{a}, r{b}")
        elif kind == "mul":
            lines.append(f"    mul r{d}, r{a}, r{b}")
        elif kind == "load":
            lines += ["    andi r21, r5, 252",
                      "    add  r21, r21, r20",
                      f"    lw   r{d}, 0(r21)"]
        elif kind == "store":
            lines += ["    andi r21, r5, 252",
                      "    add  r21, r21, r20",
                      f"    sw   r{a}, 0(r21)"]
        else:
            lines += ["    lui  r6, 0x41c6",
                      "    ori  r6, r6, 0x4e6d",
                      "    mul  r5, r5, r6",
                      "    addi r5, r5, 12345",
                      f"    srli r7, r5, {draw(st.integers(20, 28))}",
                      "    andi r7, r7, 1",
                      f"    beq  r7, r0, skip{i}",
                      f"    addi r{d}, r{d}, 1",
                      f"skip{i}:"]
    lines += ["    addi r1, r1, -1",
              "    bne  r1, r0, loop",
              "    out  r2",
              "    halt"]
    return "\n".join(lines)


class TestTimestampIdentity:
    """The engine's output is the scalar scheduler's, bit for bit."""

    @given(_program_text())
    @settings(max_examples=25, deadline=None)
    def test_superscalar_timestamps_match_scalar_scheduler(self, source):
        """Every pipeline stamp of every instruction is identical
        whether the core schedules through memoized deltas or through
        per-instruction ``OoOScheduler.add`` calls."""
        program = assemble(source, name="prop")
        stamps = {}
        results = {}
        for flag in ("1", "0"):
            with _timing_mode(flag):
                core = SuperscalarCore(SS_64x4, program)
                timeline = trace_core_timeline(core, limit=1 << 30)
                results[flag] = core.run()
                stamps[flag] = [e.stamps for e in timeline.entries]
        assert stamps["1"] == stamps["0"]
        assert results["1"] == results["0"]

    @given(_program_text())
    @settings(max_examples=12, deadline=None)
    def test_slipstream_result_identical(self, source):
        """The full co-simulation (A-stream redirects, R-phase
        ready-override mixes, recovery) is unchanged by the engine."""
        program = assemble(source, name="prop")
        res = {}
        for flag in ("1", "0"):
            with _timing_mode(flag):
                res[flag] = SlipstreamProcessor(program).run()
        assert res["1"] == res["0"]

    def test_env_opt_out(self):
        with _timing_mode("0"):
            assert not compiled_timing_enabled()
        with _timing_mode("1"):
            assert compiled_timing_enabled()


class TestTimelineComposition:
    """trace_core_timeline must compose with the engine, not bypass it."""

    def test_traced_equals_untraced_with_engine(self):
        program = assemble(REPLAY_LOOP, name="replay")
        with _timing_mode("1"):
            plain = SuperscalarCore(SS_64x4, program).run()
            core = SuperscalarCore(SS_64x4, program)
            timeline = trace_core_timeline(core, limit=1 << 30)
            traced = core.run()
        assert traced == plain
        assert len(timeline.entries) == plain.retired
        # The recorder wraps the scheduler; the engine must have bound
        # to the real one underneath and kept replaying blocks.
        assert core.scheduler.timing_block_hit > 0

    def test_traced_stamps_match_scalar_traced_stamps(self):
        program = assemble(REPLAY_LOOP, name="replay")
        stamps = {}
        for flag in ("1", "0"):
            with _timing_mode(flag):
                core = SuperscalarCore(SS_64x4, program)
                timeline = trace_core_timeline(core, limit=1 << 30)
                core.run()
                stamps[flag] = [e.stamps for e in timeline.entries]
        assert stamps["1"] == stamps["0"]

    def test_recording_limit_still_respected(self):
        program = assemble(REPLAY_LOOP, name="replay")
        with _timing_mode("1"):
            core = SuperscalarCore(SS_64x4, program)
            timeline = trace_core_timeline(core, limit=16)
            core.run()
        assert len(timeline.entries) == 16


class TestObservability:
    """Hit/miss/fallback tallies are visible, and observing is free."""

    def test_scheduler_snapshot_has_timing_counters(self):
        program = assemble(REPLAY_LOOP, name="replay")
        with _timing_mode("1"):
            core = SuperscalarCore(SS_64x4, program)
            core.run()
        snap = core.scheduler.snapshot()
        for name in ("timing_block_hit", "timing_block_miss",
                     "timing_fallback"):
            assert name in snap
        assert snap["timing_block_hit"] > 0
        assert snap["timing_block_miss"] > 0

    def test_obs_on_off_bit_identity_and_report_rows(self):
        program = assemble(REPLAY_LOOP, name="replay")
        with _timing_mode("1"):
            plain = SlipstreamProcessor(program).run()
            obs = Observability()
            observed = SlipstreamProcessor(program, obs=obs).run()
        assert observed == plain
        report = build_report("cmp/replay@1", "cmp", "replay", observed, obs)
        for prefix in ("a_sched.", "r_sched."):
            for name in ("timing_block_hit", "timing_block_miss",
                         "timing_fallback"):
                assert prefix + name in report.counters
        assert report.counters["a_sched.timing_block_hit"] > 0

    def test_scalar_mode_counts_nothing(self):
        program = assemble(REPLAY_LOOP, name="replay")
        with _timing_mode("0"):
            core = SuperscalarCore(SS_64x4, program)
            core.run()
        snap = core.scheduler.snapshot()
        assert snap["timing_block_hit"] == 0
        assert snap["timing_block_miss"] == 0
        assert snap["timing_fallback"] == 0
