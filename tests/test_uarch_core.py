"""Integration tests for the conventional superscalar model."""

import pytest

from repro.isa.assembler import assemble
from repro.trace.compare import Divergence, first_divergence
from repro.trace.selection import CompletedTrace, TraceSelector
from repro.trace.trace_id import TraceId
from repro.arch.functional import FunctionalSimulator
from repro.uarch.config import SS_128x8, SS_64x4
from repro.uarch.core import SuperscalarCore


PREDICTABLE_LOOP = """
main:
    addi r1, r0, 2000
loop:
    add  r2, r2, r1
    xor  r3, r3, r2
    addi r4, r4, 1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
"""

# A data-dependent branch pattern driven by an in-program LCG: hard to
# predict even with a large trace predictor.
NOISY_BRANCHES = """
main:
    addi r1, r0, 3000
    addi r5, r0, 12345
loop:
    # LCG: r5 = r5 * 1103515245 + 12345 (mod 2^32)
    lui  r6, 0x41c6
    ori  r6, r6, 0x4e6d
    mul  r5, r5, r6
    addi r5, r5, 12345
    srli r7, r5, 28
    andi r7, r7, 1
    beq  r7, r0, skip
    addi r2, r2, 1
skip:
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
"""


def run_model(source, config, name="test"):
    program = assemble(source, name=name)
    return SuperscalarCore(config, program).run()


class TestFirstDivergence:
    def _trace(self, source):
        program = assemble(source)
        selector = TraceSelector(8)
        return list(selector.chunk(FunctionalSimulator(program).steps()))

    def test_correct_prediction_no_divergence(self):
        traces = self._trace("addi r1, r0, 1\nbeq r1, r0, main\nmain: halt")
        trace = traces[0]
        assert first_divergence(trace.trace_id, trace) is None

    def test_cold_prediction_flags_taken_branch(self):
        traces = self._trace("beq r0, r0, t\nnop\nt: halt")
        div = first_divergence(None, traces[0])
        assert div == Divergence("outcome", 0)

    def test_cold_prediction_ok_for_straightline(self):
        traces = self._trace("addi r1, r0, 1\nnop\nhalt")
        assert first_divergence(None, traces[0]) is None

    def test_wrong_outcome_flagged(self):
        traces = self._trace("addi r1, r0, 1\nbeq r1, r0, t\nnop\nt: halt")
        trace = traces[0]
        tid = trace.trace_id
        flipped = TraceId(tid.start_pc, tuple(not o for o in tid.outcomes))
        div = first_divergence(flipped, trace)
        assert div is not None and div.kind == "outcome"

    def test_wrong_start_pc_is_boundary(self):
        traces = self._trace("nop\nhalt")
        div = first_divergence(TraceId(0xDEAD0, ()), traces[0])
        assert div == Divergence("boundary", -1)


class TestSuperscalarCore:
    def test_retires_full_program(self):
        program = assemble(PREDICTABLE_LOOP, name="loop")
        expected = FunctionalSimulator(program).run().instruction_count
        result = SuperscalarCore(SS_64x4, program).run()
        assert result.retired == expected

    def test_predictable_loop_has_low_misprediction_rate(self):
        result = run_model(PREDICTABLE_LOOP, SS_64x4)
        assert result.mispredictions_per_1000 < 2.0

    def test_noisy_branches_mispredict_often(self):
        result = run_model(NOISY_BRANCHES, SS_64x4)
        assert result.mispredictions_per_1000 > 20.0

    def test_ipc_within_machine_bounds(self):
        for source in (PREDICTABLE_LOOP, NOISY_BRANCHES):
            result = run_model(source, SS_64x4)
            assert 0.1 < result.ipc <= 4.0

    def test_wider_machine_is_not_slower(self):
        small = run_model(PREDICTABLE_LOOP, SS_64x4)
        big = run_model(PREDICTABLE_LOOP, SS_128x8)
        assert big.cycles <= small.cycles

    def test_wider_machine_speeds_up_ilp_code(self):
        # Independent work per iteration: the 8-wide machine should win
        # noticeably on the predictable loop.
        small = run_model(PREDICTABLE_LOOP, SS_64x4)
        big = run_model(PREDICTABLE_LOOP, SS_128x8)
        assert big.ipc > small.ipc * 1.05

    def test_mispredictions_hurt_ipc(self):
        good = run_model(PREDICTABLE_LOOP, SS_64x4)
        bad = run_model(NOISY_BRANCHES, SS_64x4)
        assert bad.ipc < good.ipc

    def test_results_deterministic(self):
        a = run_model(NOISY_BRANCHES, SS_64x4)
        b = run_model(NOISY_BRANCHES, SS_64x4)
        assert (a.cycles, a.branch_mispredictions) == (b.cycles, b.branch_mispredictions)
