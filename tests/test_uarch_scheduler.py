"""Unit tests for the table-scheduled out-of-order timing model."""

import pytest

from repro.uarch.config import CoreConfig
from repro.uarch.scheduler import InstrTiming, OoOScheduler


def alu(new_block=False, srcs=(), dest=None, latency=1, **kw):
    return InstrTiming(
        new_block=new_block, icache_penalty=0, srcs=srcs, dest=dest,
        latency=latency, **kw
    )


def small_config(**kw):
    defaults = dict(
        name="test", fetch_width=4, dispatch_width=2, issue_width=2,
        retire_width=2, rob_size=8, frontend_depth=2, redirect_penalty=0,
    )
    defaults.update(kw)
    return CoreConfig(**defaults)


class TestBasicPipeline:
    def test_single_instruction_flows_through(self):
        sched = OoOScheduler(small_config())
        ts = sched.add(alu(new_block=True, dest=1))
        assert ts.fetch == 0
        assert ts.dispatch == ts.fetch + 2
        assert ts.issue >= ts.dispatch
        assert ts.complete == ts.issue + 1
        assert ts.retire > ts.complete

    def test_same_block_instructions_share_fetch_cycle(self):
        sched = OoOScheduler(small_config())
        first = sched.add(alu(new_block=True))
        second = sched.add(alu())
        assert first.fetch == second.fetch

    def test_blocks_fetch_one_per_cycle(self):
        sched = OoOScheduler(small_config())
        a = sched.add(alu(new_block=True))
        b = sched.add(alu(new_block=True))
        assert b.fetch == a.fetch + 1

    def test_icache_miss_delays_block(self):
        sched = OoOScheduler(small_config())
        sched.add(alu(new_block=True))
        miss = sched.add(
            InstrTiming(new_block=True, icache_penalty=12, srcs=(), dest=None, latency=1)
        )
        assert miss.fetch == 13


class TestDependencies:
    def test_consumer_waits_for_producer(self):
        sched = OoOScheduler(small_config())
        producer = sched.add(alu(new_block=True, dest=1, latency=10))
        consumer = sched.add(alu(srcs=(1,)))
        assert consumer.issue >= producer.complete

    def test_independent_instructions_overlap(self):
        sched = OoOScheduler(small_config())
        a = sched.add(alu(new_block=True, dest=1, latency=10))
        b = sched.add(alu(dest=2, latency=1))
        assert b.complete < a.complete

    def test_load_waits_for_store_to_same_address(self):
        sched = OoOScheduler(small_config())
        store = sched.add(alu(new_block=True, is_store=True, mem_addr=0x100))
        load = sched.add(alu(is_load=True, mem_addr=0x100, latency=3))
        assert load.issue >= store.complete

    def test_load_ignores_store_to_other_address(self):
        sched = OoOScheduler(small_config())
        store = sched.add(
            alu(new_block=True, is_store=True, mem_addr=0x100, latency=30)
        )
        load = sched.add(alu(is_load=True, mem_addr=0x200, latency=3))
        assert load.issue < store.complete

    def test_ready_override_breaks_dependence(self):
        """Value-predicted operands (delay buffer) ignore local producers."""
        sched = OoOScheduler(small_config())
        producer = sched.add(alu(new_block=True, dest=1, latency=30))
        predicted = sched.add(alu(srcs=(1,), ready_override=0))
        assert predicted.issue < producer.complete

    def test_dcache_miss_extends_load(self):
        sched = OoOScheduler(small_config())
        load = sched.add(
            alu(new_block=True, is_load=True, mem_addr=0x40, latency=3,
                dcache_penalty=14)
        )
        assert load.complete == load.issue + 3 + 14


class TestWidthLimits:
    def test_issue_width_respected(self):
        sched = OoOScheduler(small_config(issue_width=2))
        stamps = [sched.add(alu(new_block=(i == 0))) for i in range(6)]
        by_cycle = {}
        for ts in stamps:
            by_cycle[ts.issue] = by_cycle.get(ts.issue, 0) + 1
        assert max(by_cycle.values()) <= 2

    def test_retire_width_respected(self):
        sched = OoOScheduler(small_config(retire_width=2))
        stamps = [sched.add(alu(new_block=(i == 0))) for i in range(8)]
        by_cycle = {}
        for ts in stamps:
            by_cycle[ts.retire] = by_cycle.get(ts.retire, 0) + 1
        assert max(by_cycle.values()) <= 2

    def test_retire_in_order(self):
        sched = OoOScheduler(small_config())
        long_op = sched.add(alu(new_block=True, dest=1, latency=20))
        short_op = sched.add(alu(dest=2, latency=1))
        assert short_op.retire >= long_op.retire  # in-order retirement

    def test_rob_limits_inflight(self):
        config = small_config(rob_size=4)
        sched = OoOScheduler(config)
        blocker = sched.add(alu(new_block=True, dest=1, latency=100))
        stamps = [sched.add(alu(srcs=(), dest=None)) for _ in range(6)]
        # The 4th instruction after the blocker needs the blocker's ROB
        # entry, which frees only at its retirement.
        assert stamps[3].dispatch >= blocker.retire

    def test_dispatch_monotonic(self):
        sched = OoOScheduler(small_config())
        stamps = [sched.add(alu(new_block=(i % 3 == 0))) for i in range(20)]
        dispatches = [ts.dispatch for ts in stamps]
        assert dispatches == sorted(dispatches)


class TestRedirects:
    def test_redirect_floors_next_block(self):
        sched = OoOScheduler(small_config())
        branch = sched.add(alu(new_block=True, latency=5))
        sched.redirect(branch.complete)
        after = sched.add(alu(new_block=True))
        assert after.fetch >= branch.complete + 1

    def test_redirect_does_not_move_fetch_backward(self):
        sched = OoOScheduler(small_config())
        sched.add(alu(new_block=True))
        sched.redirect(0)  # stale redirect
        later = sched.add(alu(new_block=True))
        assert later.fetch >= 1

    def test_stall_fetch_until(self):
        sched = OoOScheduler(small_config())
        sched.stall_fetch_until(100)
        ts = sched.add(alu(new_block=True))
        assert ts.fetch >= 100

    def test_fetch_floor_per_block(self):
        sched = OoOScheduler(small_config())
        ts = sched.add(alu(new_block=True, fetch_floor=50))
        assert ts.fetch == 50


class TestThroughput:
    def test_ideal_ipc_approaches_width(self):
        """Independent single-cycle ops, no branches: IPC ~ issue width."""
        config = small_config(fetch_width=16, dispatch_width=4, issue_width=4,
                              retire_width=4, rob_size=64)
        sched = OoOScheduler(config)
        count = 4000
        for i in range(count):
            sched.add(alu(new_block=(i % 16 == 0)))
        assert sched.ipc == pytest.approx(4.0, rel=0.05)

    def test_serial_chain_ipc_is_one(self):
        config = small_config(fetch_width=16, issue_width=4, retire_width=4)
        sched = OoOScheduler(config)
        for i in range(2000):
            sched.add(alu(new_block=(i % 16 == 0), srcs=(1,), dest=1))
        assert sched.ipc == pytest.approx(1.0, rel=0.05)

    def test_cycles_monotonic_with_work(self):
        sched = OoOScheduler(small_config())
        sched.add(alu(new_block=True))
        c1 = sched.total_cycles
        for _ in range(100):
            sched.add(alu())
        assert sched.total_cycles >= c1
