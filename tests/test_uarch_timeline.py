"""Tests for the pipeline-timeline rendering tool."""

from repro.isa.assembler import assemble
from repro.uarch.config import SS_64x4
from repro.uarch.core import SuperscalarCore
from repro.uarch.scheduler import Timestamps
from repro.uarch.timeline import PipelineTimeline, trace_core_timeline


class TestRendering:
    def test_empty(self):
        assert "(empty" in PipelineTimeline().render()

    def test_stage_letters_present_and_ordered(self):
        timeline = PipelineTimeline()
        timeline.record("add", Timestamps(0, 4, 5, 6, 7))
        text = timeline.render()
        row = text.splitlines()[1]
        assert row.index("F") < row.index("D") < row.index("I")
        assert row.index("I") < row.index("C") < row.index("R")

    def test_window_selects_rows(self):
        timeline = PipelineTimeline()
        for i in range(10):
            timeline.record(f"i{i}", Timestamps(i, i + 4, i + 5, i + 6, i + 7))
        text = timeline.render(start=5, count=2)
        assert "i5" in text and "i6" in text and "i4" not in text

    def test_long_labels_truncated(self):
        timeline = PipelineTimeline()
        timeline.record("x" * 100, Timestamps(0, 4, 5, 6, 7))
        line = timeline.render(label_width=10).splitlines()[1]
        assert line.startswith("x" * 8)


class TestCoreIntegration:
    def test_trace_core_timeline_records_run(self):
        program = assemble(
            "main:\n addi r1, r0, 50\nloop:\n addi r1, r1, -1\n"
            " bne r1, r0, loop\n halt",
            name="tl",
        )
        core = SuperscalarCore(SS_64x4, program)
        timeline = trace_core_timeline(core, limit=32)
        core.run()
        assert len(timeline.entries) == 32
        text = timeline.render(count=8)
        assert "F" in text and "R" in text
