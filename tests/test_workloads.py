"""Tests for the benchmark-suite workloads.

Every workload must halt, produce deterministic output, scale, and
exhibit the characteristic the paper's results depend on (branch
predictability ordering, removal opportunities).
"""

import pytest

from repro.arch.functional import FunctionalSimulator
from repro.workloads.suite import Benchmark, benchmark_suite, get_benchmark

ALL_NAMES = [b.name for b in benchmark_suite()]


@pytest.fixture(scope="module")
def runs():
    """One functional run of each benchmark at scale 1."""
    results = {}
    for bench in benchmark_suite():
        results[bench.name] = FunctionalSimulator(bench.program()).run()
    return results


class TestSuiteRegistry:
    def test_eight_benchmarks_in_paper_order(self):
        assert ALL_NAMES == [
            "compress", "gcc", "go", "jpeg", "li", "m88ksim", "perl", "vortex"
        ]

    def test_lookup_by_name(self):
        bench = get_benchmark("m88ksim")
        assert isinstance(bench, Benchmark)
        assert bench.paper_input

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("specfp")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_halts_and_produces_output(self, name, runs):
        result = runs[name]
        assert result.halted
        assert result.output, f"{name} produced no output"

    def test_deterministic(self, name, runs):
        again = FunctionalSimulator(get_benchmark(name).program()).run()
        assert again.output == runs[name].output
        assert again.instruction_count == runs[name].instruction_count

    def test_instruction_count_in_range(self, name, runs):
        # Table 1 analog scale: roughly 40k-500k dynamic instructions.
        assert 30_000 <= runs[name].instruction_count <= 600_000

    def test_scale_parameter_grows_run(self, name):
        small = FunctionalSimulator(get_benchmark(name).program(1),
                                    max_instructions=10**7).run()
        big = FunctionalSimulator(get_benchmark(name).program(2),
                                  max_instructions=10**7).run()
        assert big.instruction_count > small.instruction_count * 1.5


class TestCharacteristics:
    """Cheap characteristic probes on the functional stream (full
    microarchitectural characteristics are covered by the benches)."""

    @staticmethod
    def _silent_store_fraction(name):
        program = get_benchmark(name).program()
        sim = FunctionalSimulator(program)
        state = sim.fresh_state()
        silent = stores = 0
        shadow = {}
        for dyn in sim.steps(state):
            if dyn.is_store:
                stores += 1
                if shadow.get(dyn.mem_addr) == dyn.value:
                    silent += 1
                shadow[dyn.mem_addr] = dyn.value
        return silent / stores if stores else 0.0

    def test_m88ksim_is_silent_store_heavy(self):
        assert self._silent_store_fraction("m88ksim") > 0.5

    def test_compress_is_not(self):
        assert self._silent_store_fraction("compress") < \
            self._silent_store_fraction("m88ksim")

    def test_vortex_and_perl_have_silent_stores(self):
        assert self._silent_store_fraction("vortex") > 0.2
        assert self._silent_store_fraction("perl") > 0.2
