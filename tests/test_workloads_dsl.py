"""Unit tests for the workload-builder DSL and the eval model cache."""

from repro.arch.functional import FunctionalSimulator
from repro.eval.models import clear_cache, run_baseline
from repro.workloads.dsl import LCG_INCREMENT, LCG_MULTIPLIER, Asm


class TestAsm:
    def test_labels_are_unique(self):
        asm = Asm("t")
        labels = {asm.label("L") for _ in range(100)}
        assert len(labels) == 100

    def test_emit_strips_indentation(self):
        asm = Asm("t")
        asm.emit("""
            addi r1, r0, 1
            halt
        """)
        program = asm.build()
        assert len(program) == 2
        assert program.name == "t"

    def test_lcg_matches_reference(self):
        asm = Asm("t")
        asm.lcg_seed(12345)
        asm.lcg_step()
        asm.emit("out r29\nhalt")
        result = FunctionalSimulator(asm.build()).run()
        expected = (12345 * LCG_MULTIPLIER + LCG_INCREMENT) & 0xFFFFFFFF
        assert result.output[0] & 0xFFFFFFFF == expected

    def test_random_bit_is_zero_or_one(self):
        asm = Asm("t")
        asm.lcg_seed(99)
        asm.emit("addi r1, r0, 50")
        asm.emit("loop:")
        asm.random_bit("r3")
        asm.emit("out r3\naddi r1, r1, -1\nbne r1, r0, loop\nhalt")
        result = FunctionalSimulator(asm.build()).run()
        assert set(result.output) == {0, 1}

    def test_random_bits_are_balanced(self):
        asm = Asm("t")
        asm.lcg_seed(7)
        asm.emit("addi r1, r0, 400")
        asm.emit("loop:")
        asm.random_bit("r3")
        asm.emit("add r4, r4, r3\naddi r1, r1, -1\nbne r1, r0, loop")
        asm.emit("out r4\nhalt")
        ones = FunctionalSimulator(asm.build()).run().output[0]
        assert 120 <= ones <= 280  # roughly balanced


class TestModelCache:
    def test_baseline_cached_per_key(self):
        clear_cache()
        first = run_baseline("jpeg")
        second = run_baseline("jpeg")
        assert first is second  # same object: cache hit
        clear_cache()
        third = run_baseline("jpeg")
        assert third is not first
        assert third.cycles == first.cycles  # deterministic rerun
